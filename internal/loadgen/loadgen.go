// Package loadgen is the sustained-load benchmark subsystem behind
// cmd/flexload: it deploys the batched node runtime (internal/runtime)
// over the in-memory or TCP transport, drives it with open- or
// closed-loop gTPC-C clients, and measures sustained throughput and
// latency percentiles with the exact-percentile histogram
// (internal/metrics). Its JSON report (BENCH_runtime.json) is the
// repository's performance trajectory: every scaling PR is measured
// against it.
//
// The client model mirrors the paper's evaluation (§5.3): a few client
// processes, each running many concurrent closed-loop sessions. Client
// processes batch their requests per destination exactly like the
// server runtime, so the -batch knob governs the whole path.
package loadgen

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"flexcast/amcast"
	"flexcast/internal/core"
	"flexcast/internal/durable"
	"flexcast/internal/gtpcc"
	"flexcast/internal/hierarchical"
	"flexcast/internal/metrics"
	"flexcast/internal/overlay"
	"flexcast/internal/runtime"
	"flexcast/internal/skeen"
	"flexcast/internal/store"
	"flexcast/internal/telemetry"
	"flexcast/internal/wan"
)

// Config parameterizes one load run. It is the programmatic entry
// point behind cmd/flexload and cmd/flexgrid: the zero value is a
// complete configuration (fill supplies every default), flags are a
// thin parser over it (AddFlags), and grid cells build it from JSON.
type Config struct {
	// Transport selects "inmem" (default), "tcp" (loopback, one
	// in-process TCP node per group and client) or "wan" (the in-memory
	// transport with each link delayed by the paper's inter-region
	// one-way latency matrix — wan.OneWayMicros — so the fig5-style WAN
	// curves run against real wall-clock latency).
	Transport string
	// Protocol selects "flexcast" (default), "skeen" or "hierarchical".
	Protocol string
	// Groups is the number of server groups (default 12: the paper's WAN
	// group set and overlays; other sizes use a chain overlay).
	Groups int
	// Clients is the number of client processes (default 4).
	Clients int
	// Workers is the number of concurrent closed-loop sessions per
	// client process (default 32).
	Workers int
	// Rate, when > 0, switches to open-loop: each client process issues
	// Rate requests per second independent of completions.
	Rate float64
	// MaxOutstanding bounds in-flight transactions per client process in
	// open-loop mode; issuance beyond it is shed and counted (default
	// 512). Unbounded open loop over capacity measures bufferbloat — the
	// protocol's open-dependency tracking degrades superlinearly in
	// in-flight messages — not the runtime under test.
	MaxOutstanding int
	// FlushEvery is the period of the §4.3 flush/garbage-collection
	// client; it bounds the engines' history growth exactly as every
	// paper experiment does (default 500ms; negative disables).
	FlushEvery time.Duration
	// Warmup and Duration are the warm-up and measurement windows
	// (defaults 1s and 5s).
	Warmup   time.Duration
	Duration time.Duration
	// MaxBatch is the runtime batch cap for servers and clients; 1
	// disables batching (the baseline), 0 defaults to 64.
	MaxBatch int
	// FlushInterval is the batch flush period (default 500µs, matching
	// the runtime's own default).
	FlushInterval time.Duration
	// PayloadSize overrides the gTPC-C payload size when > 0.
	PayloadSize int
	// Locality is the gTPC-C locality rate (default 0.95).
	Locality float64
	// GlobalOnly restricts the workload to multi-group transactions.
	GlobalOnly bool
	// Seed drives the workload (default 1).
	Seed int64
	// Timeout bounds one transaction (default 30s); exceeding it fails
	// the run.
	Timeout time.Duration
	// Execute runs the partitioned gTPC-C store (internal/store) at
	// every group: transaction payloads carry full detail, each group
	// executes its warehouse shard's portion of every delivery (plus a
	// mirror replica as a determinism audit), clients observe per-
	// transaction commit/abort verdicts, and the run ends with a drain
	// phase followed by the cross-shard invariant and replica-digest
	// checks.
	Execute bool
	// StoreSeed seeds the store's initial population in execute mode
	// (default: Seed).
	StoreSeed int64
	// ReadPct is the read mix in percent: that fraction of each
	// session's iterations issue a read-only single-shard transaction
	// (order-status or stock-level at the client's home warehouse)
	// through the read fast path — no multicast, executed at the
	// client's delivered-prefix barrier. Reads are measured in their own
	// histogram (Result.ReadLatency) and never enter the multicast
	// counters. Requires Execute. How a read is served depends on
	// Replicas/FollowerReads below.
	ReadPct float64
	// Replicas is the replication degree of every group (default 1: the
	// serving node alone, reads served exactly as PR 4's local fast
	// path). With Replicas >= 2, each group gains Replicas-1 follower
	// read replicas applying the group's delivery log shipped from the
	// serving node — the smr deployment shape (replicas kept consistent
	// by applying the same decided sequence; internal/smr sequences it
	// through Paxos, this in-process benchmark ships it directly) — and
	// the read path models clients NOT co-located with the serving
	// node: reads travel to it as KindRead transactions over the
	// transport (request, queue, reply), unless FollowerReads routes
	// them to the client's local replica instead. Requires Execute.
	Replicas int
	// FollowerReads, with Replicas >= 2, serves reads from lease-holding
	// follower replicas local to the client (round-robin), each read at
	// the client's session barrier against the replica's own watermark —
	// the follower-read-leases configuration. An expired lease falls
	// back to the remote serving node and is counted
	// (Result.LeaseRefusals). Off, reads go remote to the serving node —
	// the leader-only baseline of the A/B.
	FollowerReads bool
	// ReadWorkers adds that many dedicated closed-loop read-only
	// sessions per client process (each hammering reads back-to-back at
	// its session barrier), measuring read capacity under the
	// configured routing while the write workload runs at equal load.
	// Requires Execute.
	ReadWorkers int
	// LeaseTerm is the follower read-lease term (default 200ms; leases
	// renew as each group's delivery log ships).
	LeaseTerm time.Duration
	// Zipf, when > 1, skews the gTPC-C workload with a Zipfian law of
	// that parameter (hot items, hot customers, near destinations); see
	// gtpcc.Config.Zipf.
	Zipf float64
	// Durable runs every group's engine behind the durable backend
	// (internal/durable): a write-ahead log of every input envelope plus
	// periodic snapshot files. The run then ends with a crash-recovery
	// verification: the on-disk image — exactly what a kill -9 at the end
	// of the measurement window would leave — is recovered into fresh
	// executors and digest-compared against the live shards, and the
	// replay length is checked against the live engines' records-since-
	// last-snapshot (the snapshot-age recovery bound). Requires Execute.
	Durable bool
	// DurableDir is the persistence root (each run persists into a fresh
	// subdirectory so successive runs never recover each other's state;
	// empty: a temp dir removed when the run ends).
	DurableDir string
	// DurableSnapshotEvery and DurableFsyncEvery override the backend's
	// snapshot and fsync cadences (0: the durable package defaults,
	// 256 and 64).
	DurableSnapshotEvery int
	DurableFsyncEvery    int
	// Adaptive runs every server node under the latency-targeted
	// adaptive batching controller (runtime.AdaptiveConfig, DESIGN.md
	// §1h): MaxBatch/FlushInterval become the ceiling of the operating
	// range instead of the fixed operating point, and each node steers
	// between the per-envelope floor and that ceiling on its own queue
	// depth.
	Adaptive bool
	// SLOMs, when > 0, adds the tail-latency SLO section to the result:
	// goodput at p99 <= SLOMs milliseconds, shed rate, and the
	// controller trajectory over the measurement window.
	SLOMs float64
	// Sessions, when > 0, multiplexes that many virtual sessions over
	// each client process's single transport connection in open-loop
	// mode (requires Rate > 0): the offered rate splits evenly across
	// sessions, each behind its own admission gate (token bucket of
	// SessionBurst, outstanding cap SessionOutstanding), and refused
	// issuances are shed — counted, never queued. Session ids ride the
	// envelope (FlagSession), so per-session FIFO and read-your-writes
	// hold over the shared connection. 0 keeps the legacy process-level
	// MaxOutstanding cap.
	Sessions int
	// SessionOutstanding caps in-flight transactions per session
	// (default 4); SessionBurst is the per-session token-bucket depth
	// (default 8).
	SessionOutstanding int
	SessionBurst       int
	// TraceSample traces one in TraceSample write transactions through
	// the lifecycle tracer (internal/telemetry): stage timestamps at
	// submit, inbound queue entry/exit, delivery, store execution,
	// reply-batch flush and completion, folded into the per-stage
	// latency histograms of Result.Stages. Sampling is deterministic on
	// the message id, so every component agrees on the sampled set with
	// no coordination; unsampled requests cost one branch per stage.
	// 0 defaults to 16 (tracing on — the measured overhead is within
	// run-to-run noise and the decomposition rides every report);
	// negative disables tracing.
	TraceSample int
}

func (c *Config) fill() error {
	if c.Transport == "" {
		c.Transport = "inmem"
	}
	if c.Transport != "inmem" && c.Transport != "tcp" && c.Transport != "wan" {
		return fmt.Errorf("loadgen: unknown transport %q", c.Transport)
	}
	if c.Protocol == "" {
		c.Protocol = "flexcast"
	}
	if c.Protocol != "flexcast" && c.Protocol != "skeen" && c.Protocol != "hierarchical" {
		return fmt.Errorf("loadgen: unknown protocol %q", c.Protocol)
	}
	if c.Groups == 0 {
		c.Groups = wan.NumRegions
	}
	if c.Groups < 2 {
		return fmt.Errorf("loadgen: need at least 2 groups")
	}
	if c.Clients == 0 {
		c.Clients = 4
	}
	if c.Workers == 0 {
		c.Workers = 32
	}
	if c.Warmup == 0 {
		c.Warmup = time.Second
	}
	if c.Duration == 0 {
		c.Duration = 5 * time.Second
	}
	if c.MaxBatch == 0 {
		c.MaxBatch = 64
	}
	if c.FlushInterval == 0 {
		c.FlushInterval = 500 * time.Microsecond
	}
	if c.MaxOutstanding == 0 {
		c.MaxOutstanding = 512
	}
	if c.FlushEvery == 0 {
		c.FlushEvery = 500 * time.Millisecond
	}
	if c.Locality == 0 {
		c.Locality = 0.95
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Timeout == 0 {
		c.Timeout = 30 * time.Second
	}
	if c.StoreSeed == 0 {
		c.StoreSeed = c.Seed
	}
	if c.ReadPct < 0 || c.ReadPct > 100 {
		return fmt.Errorf("loadgen: read percentage %v outside [0, 100]", c.ReadPct)
	}
	if c.ReadPct > 0 && !c.Execute {
		return fmt.Errorf("loadgen: -read-pct requires -execute (fast-path reads run against the store)")
	}
	if c.Replicas == 0 {
		c.Replicas = 1
	}
	if c.Replicas < 1 {
		return fmt.Errorf("loadgen: replication degree %d below 1", c.Replicas)
	}
	if c.Replicas > 1 && !c.Execute {
		return fmt.Errorf("loadgen: -replicas requires -execute (follower replicas replicate the store)")
	}
	if c.FollowerReads && c.Replicas < 2 {
		return fmt.Errorf("loadgen: -follower-reads requires -replicas >= 2")
	}
	if c.ReadWorkers < 0 {
		return fmt.Errorf("loadgen: negative read workers")
	}
	if c.ReadWorkers > 0 && !c.Execute {
		return fmt.Errorf("loadgen: -read-workers requires -execute")
	}
	if c.Workers+c.ReadWorkers >= 1<<13 {
		// Worker w's ids start at w<<24; 8192<<24 is readSeqBase, the
		// remote reads' id space.
		return fmt.Errorf("loadgen: %d sessions per client exceed the per-worker id space (max %d)",
			c.Workers+c.ReadWorkers, 1<<13-1)
	}
	if c.LeaseTerm == 0 {
		c.LeaseTerm = 200 * time.Millisecond
	}
	if c.Zipf != 0 && c.Zipf <= 1 {
		return fmt.Errorf("loadgen: zipf parameter %v outside (1, inf)", c.Zipf)
	}
	if c.Durable && !c.Execute {
		return fmt.Errorf("loadgen: -durable requires -execute (crash recovery is verified against shard digests)")
	}
	if c.TraceSample == 0 {
		c.TraceSample = 16
	}
	if c.SLOMs < 0 {
		return fmt.Errorf("loadgen: negative SLO target %v", c.SLOMs)
	}
	if c.Sessions < 0 {
		return fmt.Errorf("loadgen: negative session count")
	}
	if c.Sessions > 0 && c.Rate <= 0 {
		return fmt.Errorf("loadgen: -sessions requires -rate (admission control gates the open loop)")
	}
	if c.SessionOutstanding == 0 {
		c.SessionOutstanding = 4
	}
	if c.SessionOutstanding < 0 {
		return fmt.Errorf("loadgen: negative per-session outstanding cap")
	}
	if c.SessionBurst == 0 {
		c.SessionBurst = 8
	}
	if c.SessionBurst < 0 {
		return fmt.Errorf("loadgen: negative per-session burst")
	}
	return nil
}

// Fill normalizes the configuration in place, applying every default
// fill supplies, and reports validation errors. Run calls it
// implicitly; programmatic callers (the grid runner, tests) use it to
// observe the effective configuration of a cell before running it.
func (c *Config) Fill() error { return c.fill() }

// Defaults returns the effective defaults of a zero Config — what Run
// fills in when a field is unset — with the derived fields (StoreSeed,
// which follows Seed) left at zero so their derivation still applies
// after the caller overrides the fields they derive from. AddFlags
// uses it so flag defaults and struct defaults can never diverge.
func Defaults() Config {
	var c Config
	if err := c.fill(); err != nil {
		panic(err) // the zero Config must always validate
	}
	c.StoreSeed = 0 // derived: follows Seed at fill time
	return c
}

// TxTypeStats is the execute-mode measurement of one transaction type.
type TxTypeStats struct {
	// Committed and Aborted count measurement-window completions by
	// verdict.
	Committed uint64 `json:"committed"`
	Aborted   uint64 `json:"aborted"`
	// Latency summarizes the type's completion latency in the window.
	Latency metrics.LatencySummary `json:"latency_us"`
}

// ExecuteResult is the execute-mode extension of a run's measurement.
type ExecuteResult struct {
	// PerType breaks the measurement window down by transaction type.
	PerType map[string]*TxTypeStats `json:"per_type"`
	// Aborted counts window completions that rolled back; AbortRate is
	// their fraction of all window completions.
	Aborted   uint64  `json:"aborted"`
	AbortRate float64 `json:"abort_rate"`
	// InvariantsOK reports the post-drain cross-shard invariant audit
	// (a failed audit fails the run, so emitted reports carry true).
	InvariantsOK bool `json:"invariants_ok"`
	// ReplicaDigestsOK reports that every shard's mirror replica
	// reached a byte-identical digest.
	ReplicaDigestsOK bool `json:"replica_digests_ok"`
	// GlobalDigest is the hex digest folded over all shard digests in
	// group order — the run's final database fingerprint.
	GlobalDigest string `json:"global_digest"`
	// PaymentsBanked is the warehouses' total year-to-date payment
	// intake, cross-checked against the clients' committed payment
	// amounts over the whole run.
	PaymentsBanked int64 `json:"payments_banked"`
	// Shards is the number of warehouse shards executed.
	Shards int `json:"shards"`
	// TxApplied is the total number of transactions executed across all
	// shards (multi-shard transactions count once per involved shard).
	TxApplied uint64 `json:"tx_applied"`
}

// DurableResult is the -durable run's end-of-run crash-recovery
// verification: the on-disk image (the exact state a kill -9 at the end
// of the window would leave) recovered into fresh executors and checked
// against the live deployment.
type DurableResult struct {
	// Groups is the number of groups recovered and verified.
	Groups int `json:"groups"`
	// DigestsMatch reports that every recovered shard reached a
	// byte-identical digest with its live counterpart (a mismatch fails
	// the run, so emitted reports carry true).
	DigestsMatch bool `json:"digests_match"`
	// SnapshottedGroups counts groups whose recovery restored from a
	// snapshot file (the rest replayed their whole WAL — short runs or
	// cold groups that never hit the cadence).
	SnapshottedGroups int `json:"snapshotted_groups"`
	// ReplayedEnvelopes totals the WAL envelopes replayed across groups;
	// MaxReplayedEnvelopes is the worst single group. Each group's replay
	// equals its records since the last snapshot — the snapshot-age bound
	// (checked, a violation fails the run).
	ReplayedEnvelopes    int `json:"replayed_envelopes"`
	MaxReplayedEnvelopes int `json:"max_replayed_envelopes"`
	// RecoveryMeanUs and RecoveryMaxUs summarize per-group recovery
	// wall-clock time (restore + replay).
	RecoveryMeanUs float64 `json:"recovery_mean_us"`
	RecoveryMaxUs  int64   `json:"recovery_max_us"`
	// TornTailBytes totals discarded torn WAL tails (0 on a healthy
	// image: the process was alive, so no write was mid-frame).
	TornTailBytes int64 `json:"torn_tail_bytes"`
}

// Result is one run's measurement. Completed/Throughput/Latency cover
// the multicast (write) path only — comparable across every report this
// repository has ever emitted; read-mix runs add the fast-path read
// counters alongside.
type Result struct {
	Completed  uint64                 `json:"completed"`
	Throughput float64                `json:"throughput_tx_s"`
	WindowSecs float64                `json:"window_s"`
	Latency    metrics.LatencySummary `json:"latency_us"`
	// Reads counts fast-path read completions in the measurement window;
	// ReadThroughput is their rate and ReadLatency their summary (often
	// single-digit microseconds — the histogram's unit stays µs, so a
	// p50 of 0 means sub-microsecond). TotalThroughput combines reads
	// and writes. Present only on runs with a read workload (-read-pct
	// or -read-workers).
	Reads           uint64                  `json:"reads,omitempty"`
	ReadThroughput  float64                 `json:"read_throughput_tx_s,omitempty"`
	TotalThroughput float64                 `json:"total_throughput_tx_s,omitempty"`
	ReadLatency     *metrics.LatencySummary `json:"read_latency_us,omitempty"`
	// ReadLatencyNs is the same distribution at nanosecond resolution:
	// the local read fast path completes in hundreds of nanoseconds,
	// which the microsecond summary above truncates to 0. ReadLatency is
	// derived from it (integer µs) for backward comparability.
	ReadLatencyNs *metrics.NsSummary `json:"read_latency_ns,omitempty"`
	// ReadsPerReplica breaks window reads down by serving replica on
	// replicated runs (-replicas >= 2): index 0 is the serving node
	// (remote KindRead transactions and lease fallbacks), index i >= 1
	// follower replica i. LeaseRefusals counts follower reads refused
	// for an expired lease (each fell back to the serving node);
	// RemoteReads counts reads that crossed the transport.
	ReadsPerReplica []uint64 `json:"reads_per_replica,omitempty"`
	LeaseRefusals   uint64   `json:"lease_refusals,omitempty"`
	RemoteReads     uint64   `json:"remote_reads,omitempty"`
	// Execute carries the store-execution measurement when the run
	// executed transactions (-execute).
	Execute *ExecuteResult `json:"execute,omitempty"`
	// Durable carries the crash-recovery verification when the run used
	// the durable backend (-durable).
	Durable *DurableResult `json:"durable,omitempty"`
	// Issued counts requests issued during the measurement window.
	// Completed counts only transactions both issued AND completed
	// inside the window (warmup carry-overs and replies landing after
	// the close are excluded), so under open loop Issued far above
	// Completed means the system fell behind the offered rate —
	// transactions were still queued, unanswered, when the window
	// closed, and the throughput figure does not credit them.
	Issued uint64 `json:"issued"`
	// Shed counts open-loop issuances refused by admission control
	// during the window: the process-level outstanding cap
	// (-max-outstanding), or with -sessions the per-session token
	// bucket and outstanding cap.
	Shed uint64 `json:"shed,omitempty"`
	// SLO is the tail-latency service-level section (-slo-ms): goodput
	// at the latency target, shed rate, controller trajectory.
	SLO *SLOResult `json:"slo,omitempty"`
	// Batching statistics aggregated over all server and client nodes.
	BatchesSent   uint64  `json:"batches_sent"`
	EnvelopesSent uint64  `json:"envelopes_sent"`
	AvgBatch      float64 `json:"avg_batch"`
	LargestBatch  int     `json:"largest_batch"`
	// Stages is the sampled write-path stage-latency decomposition
	// (TraceSample > 0): one nanosecond summary per lifecycle transition,
	// telescoping to the traced end-to-end distribution.
	Stages *telemetry.StagesReport `json:"stages,omitempty"`
}

// protocolDeployment carries the protocol-specific pieces.
type protocolDeployment struct {
	groups  []amcast.GroupID
	factory func(g amcast.GroupID) (amcast.Engine, error)
	route   func(m amcast.Message) []amcast.NodeID
	nearest func(home amcast.GroupID) []amcast.GroupID
	// executors collects the store executors in group order (execute
	// mode; filled as the transport deployment builds engines), and
	// execByGroup indexes them for the local-read fast path.
	executors   []*store.Executor
	execByGroup map[amcast.GroupID]*store.Executor
	// followers indexes each group's follower read replicas (Replicas
	// >= 2): log-shipped from the serving node, lease-renewed by the
	// feed, read by clients co-located with them.
	followers map[amcast.GroupID][]*store.Replica
	// Durable-backend pieces (-durable): the live durable engines by
	// group, the protocol-only factory (for building the fresh engines
	// the crash-recovery verification recovers into), and the snapshot
	// decoder matching what the engines persist.
	durables     map[amcast.GroupID]*durable.Engine
	protoFactory func(g amcast.GroupID) (amcast.Engine, error)
	snapDecode   func([]byte) (amcast.Snapshot, error)
	// tracer is the run's lifecycle tracer (nil: tracing off); the
	// factories wire it into every executor, and deploy into every node.
	tracer *telemetry.Tracer
}

// wrapExecute layers the store executor over the protocol factory:
// every group's engine gains a warehouse shard plus a mirror replica —
// and, with Replicas >= 2, the group's follower read replicas.
func (d *protocolDeployment) wrapExecute(cfg Config) {
	base := d.factory
	d.execByGroup = make(map[amcast.GroupID]*store.Executor)
	d.followers = make(map[amcast.GroupID][]*store.Replica)
	d.factory = func(g amcast.GroupID) (amcast.Engine, error) {
		eng, err := base(g)
		if err != nil {
			return nil, err
		}
		ex, err := store.Wrap(eng, store.Config{
			Warehouse: g,
			Seed:      cfg.StoreSeed,
		}, true)
		if err != nil {
			return nil, err
		}
		for i := 1; i < cfg.Replicas; i++ {
			rep, err := ex.AttachFollower(store.ReplicaConfig{
				Idx:           int32(i),
				Async:         true, // Clock defaults to the wall clock
				AutoGrantTerm: uint64(cfg.LeaseTerm.Microseconds()),
			})
			if err != nil {
				return nil, err
			}
			d.followers[g] = append(d.followers[g], rep)
		}
		ex.SetTracer(d.tracer)
		d.executors = append(d.executors, ex)
		d.execByGroup[g] = ex
		return ex, nil
	}
}

// wrapDurable layers the durable backend over the composed factory:
// every group's engine (execution layer included, so the WAL records
// the exact inputs of the state its snapshots capture) persists into
// DurableDir/group-<id>.
func (d *protocolDeployment) wrapDurable(cfg Config) {
	base := d.factory
	d.durables = make(map[amcast.GroupID]*durable.Engine)
	d.factory = func(g amcast.GroupID) (amcast.Engine, error) {
		eng, err := base(g)
		if err != nil {
			return nil, err
		}
		se, ok := eng.(amcast.SnapshotEngine)
		if !ok {
			return nil, fmt.Errorf("loadgen: durable backend requires a snapshot-capable engine, got %T", eng)
		}
		de, err := durable.Wrap(se, durable.Options{
			Dir:           filepath.Join(cfg.DurableDir, fmt.Sprintf("group-%d", g)),
			SnapshotEvery: cfg.DurableSnapshotEvery,
			FsyncEvery:    cfg.DurableFsyncEvery,
			Decode:        d.snapDecode,
		})
		if err != nil {
			return nil, err
		}
		d.durables[g] = de
		return de, nil
	}
}

// closeFollowers stops the follower repliers; call after the serving
// nodes (the feeders) have closed.
func (d *protocolDeployment) closeFollowers() {
	for _, reps := range d.followers {
		for _, rep := range reps {
			rep.Close()
		}
	}
}

func buildProtocol(cfg Config) (*protocolDeployment, error) {
	var groups []amcast.GroupID
	paperScale := cfg.Groups == wan.NumRegions
	if paperScale {
		groups = wan.Groups()
	} else {
		for i := 1; i <= cfg.Groups; i++ {
			groups = append(groups, amcast.GroupID(i))
		}
	}
	d := &protocolDeployment{groups: groups}
	d.nearest = func(home amcast.GroupID) []amcast.GroupID {
		if paperScale {
			return wan.NearestOrder(home)
		}
		var out []amcast.GroupID
		for _, g := range groups {
			if g != home {
				out = append(out, g)
			}
		}
		return out
	}
	switch cfg.Protocol {
	case "flexcast":
		var ov *overlay.CDAG
		var err error
		if paperScale {
			ov = wan.O1()
		} else if ov, err = overlay.NewCDAG(groups); err != nil {
			return nil, err
		}
		d.factory = func(g amcast.GroupID) (amcast.Engine, error) {
			return core.New(core.Config{Group: g, Overlay: ov})
		}
		d.route = func(m amcast.Message) []amcast.NodeID {
			return []amcast.NodeID{amcast.GroupNode(ov.Lca(m.Dst))}
		}
	case "skeen":
		d.factory = func(g amcast.GroupID) (amcast.Engine, error) {
			return skeen.New(skeen.Config{Group: g, Groups: groups})
		}
		d.route = func(m amcast.Message) []amcast.NodeID {
			nodes := make([]amcast.NodeID, len(m.Dst))
			for i, g := range m.Dst {
				nodes[i] = amcast.GroupNode(g)
			}
			return nodes
		}
	case "hierarchical":
		var tr *overlay.Tree
		var err error
		if paperScale {
			tr = wan.T1()
		} else {
			// Star tree rooted at the first group.
			children := map[amcast.GroupID][]amcast.GroupID{groups[0]: groups[1:]}
			if tr, err = overlay.NewTree(groups[0], children); err != nil {
				return nil, err
			}
		}
		d.factory = func(g amcast.GroupID) (amcast.Engine, error) {
			return hierarchical.New(hierarchical.Config{Group: g, Tree: tr})
		}
		d.route = func(m amcast.Message) []amcast.NodeID {
			return []amcast.NodeID{amcast.GroupNode(tr.Lca(m.Dst))}
		}
	}
	d.protoFactory = d.factory
	if cfg.Execute {
		d.wrapExecute(cfg)
	}
	if cfg.Durable {
		proto := protoSnapshotDecoder(cfg.Protocol)
		d.snapDecode = proto
		if cfg.Execute {
			d.snapDecode = func(data []byte) (amcast.Snapshot, error) {
				return store.UnmarshalSnapshot(data, proto)
			}
		}
		d.wrapDurable(cfg)
	}
	return d, nil
}

// protoSnapshotDecoder returns the snapshot decoder of a protocol's
// bare engine.
func protoSnapshotDecoder(protocol string) func([]byte) (amcast.Snapshot, error) {
	switch protocol {
	case "skeen":
		return skeen.UnmarshalSnapshot
	case "hierarchical":
		return hierarchical.UnmarshalSnapshot
	default:
		return core.UnmarshalSnapshot
	}
}

// txState tracks one in-flight transaction at its issuing client.
type txState struct {
	remaining map[amcast.GroupID]bool
	issued    time.Time
	done      chan struct{} // closed-loop sessions wait on it; nil open-loop
	// silent transactions (the flush client's) stay out of the metrics.
	silent bool
	// isRead marks a remote KindRead transaction: measured in the read
	// histogram, never in the multicast counters.
	isRead bool
	// txType and amount carry execute-mode detail for per-type stats
	// and the payment cross-check.
	txType gtpcc.TxType
	amount int64
	// result folds the per-group execution verdicts; replies that
	// disagree bump the run's divergence counter.
	result uint8
	// sess is the virtual session that admitted this transaction
	// (session-multiplexed open loop); completion releases its
	// outstanding slot. nil outside session mode.
	sess *session
}

// clientProc is one client process: its own node id on the transport, a
// request batcher fed by a dispatcher goroutine that coalesces the
// process's concurrent sessions (the same adaptive batching as
// runtime.Node — batches form only when sessions outpace the transport,
// and an idle client flushes immediately), and the in-flight transaction
// table its reply handler resolves.
type clientProc struct {
	idx     int
	id      amcast.NodeID
	batcher *runtime.Batcher
	out     chan amcast.Message

	mu       sync.Mutex
	inflight map[amcast.MsgID]*txState
	// prefix is this client process's session barrier: the delivered
	// prefix observed per group from replies (sequence numbers plus
	// piggybacked watermarks) and from read results — the
	// read-your-writes barrier of its reads, valid at whichever replica
	// serves them. Guarded by mu.
	prefix amcast.PrefixTracker

	// rr round-robins the process's reads over its group's follower
	// replicas; readSeq allocates remote-read message ids.
	rr      atomic.Uint64
	readSeq atomic.Uint64

	// sessions is the process's virtual session table (session-
	// multiplexed open loop; nil otherwise). sessBase is the id of
	// sessions[0]; replies carrying a session id resolve through it.
	sessions []*session
	sessBase uint64

	run *run
}

// sessionOf resolves a reply's session id to this process's session,
// or nil (no session flag, or another client's id — batched fan-in can
// only misroute if the transport breaks, and a nil just skips the
// per-session fold).
func (c *clientProc) sessionOf(m amcast.Message) *session {
	if m.Flags&amcast.FlagSession == 0 || len(c.sessions) == 0 {
		return nil
	}
	idx := m.Session - c.sessBase
	if idx >= uint64(len(c.sessions)) {
		return nil
	}
	return c.sessions[idx]
}

// readSeqBase puts remote-read message ids in their own space: above
// every worker's id space (worker << 24) and below the flush client's
// (1 << 38).
const readSeqBase = uint64(1) << 37

// foldRead raises the client's barrier at g to a read's serving
// watermark — the monotonic-reads half of the session guarantee (a
// later read at a lagging replica waits until it catches up to state
// this client has already seen).
func (c *clientProc) foldRead(g amcast.GroupID, watermark uint64) {
	c.mu.Lock()
	c.prefix.Fold(g, watermark)
	c.mu.Unlock()
}

// recordRead measures one synchronously served read (local or
// follower; remote reads are measured at reply completion instead).
// The read histogram records nanoseconds: the local fast path completes
// in hundreds of ns, which microsecond buckets truncate to zero.
func (c *clientProc) recordRead(start time.Time, replica int32) {
	if !c.run.measuring.Load() || start.Before(c.run.windowStart) {
		return
	}
	lat := time.Since(start).Nanoseconds()
	if lat < 0 {
		lat = 0
	}
	c.run.reads.Add(1)
	c.run.readHist.Record(uint64(lat))
	c.run.readByReplica[replica].Add(1)
}

// observedPrefix returns the client's delivered-prefix barrier for g.
func (c *clientProc) observedPrefix(g amcast.GroupID) uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.prefix.Prefix(g)
}

// dispatcher drains queued requests into the batcher and flushes when
// the queue runs dry.
func (c *clientProc) dispatcher(stop <-chan struct{}, wg *sync.WaitGroup) {
	defer wg.Done()
	for {
		var m amcast.Message
		select {
		case m = <-c.out:
		case <-stop:
			// Sessions have unblocked, but one may have queued a final
			// request the select raced past: drain before exiting, or
			// the execute-mode drain phase waits on a never-sent tx.
			for {
				select {
				case m := <-c.out:
					c.addRequest(m)
				default:
					c.batcher.FlushAll()
					return
				}
			}
		}
		c.addRequest(m)
	drain:
		for {
			select {
			case more := <-c.out:
				c.addRequest(more)
			default:
				break drain
			}
		}
		c.batcher.FlushAll()
	}
}

func (c *clientProc) addRequest(m amcast.Message) {
	if m.Flags&amcast.FlagRead != 0 {
		// A remote read: straight to the serving node (no multicast
		// entry routing), with the client's barrier taken at send time —
		// at least as fresh as at issue time, so still read-your-writes.
		g := m.Dst[0]
		c.batcher.Add(amcast.GroupNode(g), amcast.Envelope{
			Kind: amcast.KindRead, From: c.id, Msg: m, TS: c.observedPrefix(g),
		})
		return
	}
	for _, to := range c.run.proto.route(m) {
		c.batcher.Add(to, amcast.Envelope{Kind: amcast.KindRequest, From: c.id, Msg: m})
	}
}

func (c *clientProc) onReplies(envs []amcast.Envelope) {
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, env := range envs {
		if env.Kind != amcast.KindReply {
			continue
		}
		c.prefix.Observe(env)
		if s := c.sessionOf(env.Msg); s != nil {
			// The session's own barrier advances on every reply carrying
			// its id — per-session read-your-writes over the shared conn.
			s.observe(env)
		}
		tx, ok := c.inflight[env.Msg.ID]
		if !ok || !tx.remaining[env.From.Group()] {
			continue
		}
		if env.Result != amcast.ResultNone {
			if tx.result == amcast.ResultNone {
				tx.result = env.Result
			} else if tx.result != env.Result {
				// Involved groups reached different verdicts: the
				// deterministic one-shot execution contract is broken.
				c.run.execDiverged.Add(1)
			}
		} else if c.run.cfg.Execute && !tx.silent {
			// An executing deployment replied without a verdict: that
			// shard never executed the transaction (partial execution) —
			// as hard a contract violation as diverging verdicts.
			c.run.execNoVerdict.Add(1)
		}
		delete(tx.remaining, env.From.Group())
		if len(tx.remaining) > 0 {
			continue
		}
		delete(c.inflight, env.Msg.ID)
		if !tx.silent && !tx.isRead {
			c.run.tracer.Finish(env.Msg.ID)
		}
		if tx.sess != nil {
			tx.sess.release()
		}
		c.run.complete(tx, now)
		if tx.done != nil {
			close(tx.done)
		}
	}
}

// inflightLen reports the client's in-flight transaction count.
func (c *clientProc) inflightLen() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.inflight)
}

// issue registers one transaction and queues it to the dispatcher.
func (c *clientProc) issue(m amcast.Message, meta txMeta, closedLoop, silent bool) *txState {
	tx := &txState{
		remaining: make(map[amcast.GroupID]bool, len(m.Dst)),
		silent:    silent,
		isRead:    meta.isRead,
		txType:    meta.typ,
		amount:    meta.amount,
		sess:      meta.sess,
	}
	for _, g := range m.Dst {
		tx.remaining[g] = true
	}
	if closedLoop {
		tx.done = make(chan struct{})
	}
	c.mu.Lock()
	tx.issued = time.Now()
	c.inflight[m.ID] = tx
	c.mu.Unlock()
	if !silent && !meta.isRead {
		// Trace records exist only for measured writes: Begin before the
		// dispatcher can send, so no downstream stamp precedes it. Flush
		// multicasts (silent) and reads never begin a record, so their
		// ids' stamps are dropped at lookup.
		c.run.tracer.Begin(m.ID)
		if c.run.measuring.Load() {
			// Issued covers the multicast (write) path only; reads have
			// their own counters.
			c.run.issued.Add(1)
		}
	}
	c.out <- m
	return tx
}

// txMeta carries execute-mode issue detail into the in-flight table.
type txMeta struct {
	typ    gtpcc.TxType
	amount int64
	isRead bool
	sess   *session
}

// run is one executing load run.
type run struct {
	cfg   Config
	proto *protocolDeployment

	hist      *metrics.Histogram
	tracer    *telemetry.Tracer
	completed atomic.Uint64
	issued    atomic.Uint64
	shed      atomic.Uint64
	measuring atomic.Bool
	// good counts window completions within the SLO latency target
	// (sloTargetUs, precomputed from Config.SLOMs; 0 = no SLO).
	good        atomic.Uint64
	sloTargetUs int64

	// Fast-path read accumulators (read-mix runs): window completions
	// and their latency, kept apart from the multicast counters.
	// readByReplica[i] counts window reads served by replica i of the
	// serving group (0: the serving node, locally or via remote
	// KindRead; >= 1: follower replicas). leaseRefusals counts follower
	// reads refused for an expired lease (fallen back to the serving
	// node); remoteReads counts reads that crossed the transport;
	// readRefused counts remote reads the serving node refused — a
	// contract violation that fails the run.
	readHist      *metrics.Histogram
	reads         atomic.Uint64
	readByReplica []atomic.Uint64
	leaseRefusals atomic.Uint64
	remoteReads   atomic.Uint64
	readRefused   atomic.Uint64

	// Execute-mode accumulators. typeHists/typeCommitted/typeAborted are
	// indexed by gtpcc.TxType and cover the measurement window;
	// paidCommitted tallies committed payment amounts over the WHOLE run
	// for the conservation cross-check against the warehouses' books.
	typeHists     [6]*metrics.Histogram
	typeCommitted [6]atomic.Uint64
	typeAborted   [6]atomic.Uint64
	paidCommitted atomic.Int64
	execDiverged  atomic.Uint64
	execNoVerdict atomic.Uint64

	// windowStart is the measurement window's opening instant (read by
	// loops that only need a lower bound); windowStartNs/windowEndNs
	// publish the exact window bounds for completion accounting. The
	// end is fixed at open time (start + Duration), so whether a
	// completion counts depends only on when it happened — a reply the
	// handler processes just after the window closes, or a sleep that
	// overshoots the duration, can no longer leak into (or deflate) the
	// window's counters. WindowSecs is then exactly the configured
	// duration.
	windowStart   time.Time
	windowStartNs atomic.Int64
	windowEndNs   atomic.Int64
}

// openWindow opens the measurement window at now for d.
func (r *run) openWindow(now time.Time, d time.Duration) {
	r.windowStart = now
	r.windowStartNs.Store(now.UnixNano())
	r.windowEndNs.Store(now.Add(d).UnixNano())
	r.measuring.Store(true)
}

// windowContains reports whether a transaction both issued and
// completed inside the measurement window — the completion-accounting
// predicate: Completed (and every latency sample) counts exactly the
// transactions whose full lifetime fits the window.
func (r *run) windowContains(issued, done time.Time) bool {
	start := r.windowStartNs.Load()
	return start != 0 && issued.UnixNano() >= start && done.UnixNano() <= r.windowEndNs.Load()
}

// complete records one finished transaction.
func (r *run) complete(tx *txState, now time.Time) {
	if tx.silent {
		return
	}
	if tx.isRead {
		// A remote read completed: served by the serving node (replica
		// 0) over the transport. A refused read means the node could not
		// satisfy a barrier derived from observed replies — the
		// delivered-prefix contract broke — and fails the run at audit.
		if tx.result != amcast.ResultCommitted {
			r.readRefused.Add(1)
			return
		}
		if !r.windowContains(tx.issued, now) {
			return
		}
		// Nanoseconds, like recordRead: one read histogram, one unit.
		lat := now.Sub(tx.issued).Nanoseconds()
		if lat < 0 {
			lat = 0
		}
		r.reads.Add(1)
		r.readHist.Record(uint64(lat))
		r.readByReplica[0].Add(1)
		r.remoteReads.Add(1)
		return
	}
	if r.cfg.Execute && tx.txType == gtpcc.Payment && tx.result == amcast.ResultCommitted {
		r.paidCommitted.Add(tx.amount)
	}
	if !r.windowContains(tx.issued, now) {
		return
	}
	r.completed.Add(1)
	lat := now.Sub(tx.issued).Microseconds()
	if lat < 0 {
		lat = 0
	}
	r.hist.Record(uint64(lat))
	if r.sloTargetUs > 0 && lat <= r.sloTargetUs {
		r.good.Add(1)
	}
	if r.cfg.Execute && tx.txType >= 1 && int(tx.txType) < len(r.typeHists) {
		r.typeHists[tx.txType].Record(uint64(lat))
		if tx.result == amcast.ResultAborted {
			r.typeAborted[tx.txType].Add(1)
		} else {
			r.typeCommitted[tx.txType].Add(1)
		}
	}
}

// Run executes one load run and returns its measurement.
func Run(cfg Config) (*Result, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	if cfg.Durable {
		// Each run persists into a fresh directory: recovering a previous
		// run's state under a fresh client would not be a benchmark, and
		// the verification below needs to own the image.
		if cfg.DurableDir == "" {
			dir, err := os.MkdirTemp("", "flexload-durable-")
			if err != nil {
				return nil, err
			}
			defer os.RemoveAll(dir)
			cfg.DurableDir = dir
		} else {
			if err := os.MkdirAll(cfg.DurableDir, 0o755); err != nil {
				return nil, err
			}
			dir, err := os.MkdirTemp(cfg.DurableDir, "run-")
			if err != nil {
				return nil, err
			}
			cfg.DurableDir = dir
		}
	}
	proto, err := buildProtocol(cfg)
	if err != nil {
		return nil, err
	}
	r := &run{cfg: cfg, proto: proto, hist: metrics.NewHistogram(), readHist: metrics.NewHistogram()}
	if cfg.SLOMs > 0 {
		r.sloTargetUs = int64(cfg.SLOMs * 1000)
	}
	r.tracer = telemetry.NewTracer(cfg.TraceSample, nil)
	proto.tracer = r.tracer
	r.readByReplica = make([]atomic.Uint64, cfg.Replicas)
	for i := range r.typeHists {
		r.typeHists[i] = metrics.NewHistogram()
	}

	dep, clients, err := deploy(cfg, proto, r)
	if err != nil {
		return nil, err
	}
	defer dep.close()
	registerTelemetry(r, dep, clients)

	// Sessions stop first; dispatchers stop after every session has
	// unblocked, so an issue() in flight is always drained.
	stop := make(chan struct{})
	stopDispatch := make(chan struct{})
	errCh := make(chan error, cfg.Clients*cfg.Workers+1)
	var wg sync.WaitGroup
	var dispatchWG sync.WaitGroup
	for _, c := range clients {
		dispatchWG.Add(1)
		go c.dispatcher(stopDispatch, &dispatchWG)
	}

	// The flush/garbage-collection client (paper §4.3): a closed-loop
	// flush multicast to every group on a fixed period, keeping engine
	// histories pruned during sustained load.
	if cfg.FlushEvery > 0 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			flushLoop(clients[0], cfg, proto, stop, errCh)
		}()
	}
	for _, c := range clients {
		c := c
		for w := 0; w < cfg.ReadWorkers; w++ {
			w := w
			wg.Add(1)
			go func() {
				defer wg.Done()
				readLoop(c, w, cfg, stop, errCh)
			}()
		}
		if cfg.Rate > 0 {
			wg.Add(1)
			go func() {
				defer wg.Done()
				openLoop(c, cfg, stop, errCh)
			}()
			continue
		}
		for w := 0; w < cfg.Workers; w++ {
			w := w
			wg.Add(1)
			go func() {
				defer wg.Done()
				closedLoop(c, w, cfg, stop, errCh)
			}()
		}
	}

	// Warm up, open the measurement window, close it, stop the load.
	// The window bounds are fixed at open time, so completion accounting
	// is exact: see run.windowContains.
	time.Sleep(cfg.Warmup)
	r.openWindow(time.Now(), cfg.Duration)
	var trajStop chan struct{}
	var trajOut chan []SLOPoint
	if cfg.SLOMs > 0 {
		trajStop = make(chan struct{})
		trajOut = make(chan []SLOPoint, 1)
		go sampleTrajectory(dep.nodes, r.windowStart, trajStop, trajOut)
	}
	time.Sleep(cfg.Duration)
	r.measuring.Store(false)
	windowSecs := cfg.Duration.Seconds()
	var traj []SLOPoint
	if trajStop != nil {
		close(trajStop)
		traj = <-trajOut
	}
	close(stop)
	wg.Wait()
	close(stopDispatch)
	dispatchWG.Wait()

	select {
	case err := <-errCh:
		return nil, err
	default:
	}

	var execRes *ExecuteResult
	if cfg.Execute {
		// Drain: the store invariants are defined over quiesced state, so
		// wait for every in-flight transaction to complete before auditing.
		deadline := time.Now().Add(cfg.Timeout)
		for {
			pending := 0
			for _, c := range clients {
				pending += c.inflightLen()
			}
			if pending == 0 {
				break
			}
			if time.Now().After(deadline) {
				return nil, fmt.Errorf("loadgen: %d transactions still in flight %v after load stop", pending, cfg.Timeout)
			}
			time.Sleep(2 * time.Millisecond)
		}
		if execRes, err = r.auditExecution(); err != nil {
			return nil, err
		}
	}
	var durRes *DurableResult
	if cfg.Durable {
		// The load has stopped and drained, so the on-disk state is
		// quiescent: recover the crash image while the live shards are
		// still around to compare against.
		if durRes, err = r.verifyDurableRecovery(); err != nil {
			return nil, err
		}
	}

	res := &Result{
		Completed:  r.completed.Load(),
		Issued:     r.issued.Load(),
		Shed:       r.shed.Load(),
		WindowSecs: windowSecs,
		Latency:    r.hist.Summary(),
		Execute:    execRes,
		Durable:    durRes,
	}
	if windowSecs > 0 {
		res.Throughput = float64(res.Completed) / windowSecs
	}
	if cfg.SLOMs > 0 {
		res.SLO = buildSLO(cfg.SLOMs, r.good.Load(), res.Completed, res.Issued, res.Shed, windowSecs, traj)
		res.SLO.Sessions = cfg.Sessions
	}
	if n := r.readRefused.Load(); n > 0 {
		return nil, fmt.Errorf("loadgen: %d remote reads refused by their serving node (barrier ahead of delivered prefix — the prefix contract broke)", n)
	}
	if cfg.ReadPct > 0 || cfg.ReadWorkers > 0 {
		res.Reads = r.reads.Load()
		if res.Reads == 0 {
			// A read-mix run that measured no reads is not a
			// measurement — and would emit a report the validator
			// rejects. Fail loudly instead (lengthen the window).
			return nil, fmt.Errorf("loadgen: read workload configured but no read completions measured in the %.2fs window", windowSecs)
		}
		rln := r.readHist.SummaryNs()
		res.ReadLatencyNs = &rln
		rl := rln.ToMicros()
		res.ReadLatency = &rl
		if windowSecs > 0 {
			res.ReadThroughput = float64(res.Reads) / windowSecs
			res.TotalThroughput = res.Throughput + res.ReadThroughput
		}
		if cfg.Replicas > 1 {
			res.ReadsPerReplica = make([]uint64, cfg.Replicas)
			for i := range r.readByReplica {
				res.ReadsPerReplica[i] = r.readByReplica[i].Load()
			}
			res.LeaseRefusals = r.leaseRefusals.Load()
			res.RemoteReads = r.remoteReads.Load()
		}
	}
	var stats runtime.BatcherStats
	for _, n := range dep.nodes {
		stats.Add(n.Stats())
	}
	for _, c := range clients {
		stats.Add(c.batcher.Stats())
	}
	res.BatchesSent = stats.Batches
	res.EnvelopesSent = stats.Envelopes
	res.AvgBatch = stats.AvgBatch()
	res.LargestBatch = stats.MaxBatch
	res.Stages = r.tracer.Report()
	return res, nil
}

// auditExecution runs the post-drain execute-mode checks and assembles
// the execution measurement.
func (r *run) auditExecution() (*ExecuteResult, error) {
	if n := r.execDiverged.Load(); n > 0 {
		return nil, fmt.Errorf("loadgen: %d transactions received diverging verdicts across involved groups", n)
	}
	if n := r.execNoVerdict.Load(); n > 0 {
		return nil, fmt.Errorf("loadgen: %d replies carried no execution verdict (a shard skipped executing a transaction)", n)
	}
	execs := r.proto.executors
	if len(execs) == 0 {
		return nil, fmt.Errorf("loadgen: execute mode deployed no store executors")
	}
	res := &ExecuteResult{
		PerType: make(map[string]*TxTypeStats),
		Shards:  len(execs),
	}
	shards := make([]*store.Shard, 0, len(execs))
	global := sha256.New()
	var banked int64
	for _, ex := range execs {
		if err := ex.CheckMirror(); err != nil {
			return nil, err
		}
		sh := ex.Shard()
		shards = append(shards, sh)
		d := sh.Digest()
		global.Write(d[:])
		banked += sh.Totals().WarehouseYTD
		res.TxApplied += sh.Applied()
	}
	res.ReplicaDigestsOK = true
	if err := store.CheckInvariants(shards); err != nil {
		return nil, err
	}
	res.InvariantsOK = true
	res.GlobalDigest = hex.EncodeToString(global.Sum(nil))
	res.PaymentsBanked = banked
	if paid := r.paidCommitted.Load(); paid != banked {
		return nil, fmt.Errorf("loadgen: clients committed payments totalling %d but warehouses banked %d (a payment applied without completing, or vice versa)",
			paid, banked)
	}
	var completed uint64
	for typ := gtpcc.NewOrder; typ <= gtpcc.StockLevel; typ++ {
		c, a := r.typeCommitted[typ].Load(), r.typeAborted[typ].Load()
		if c+a == 0 {
			continue
		}
		res.PerType[typ.String()] = &TxTypeStats{
			Committed: c,
			Aborted:   a,
			Latency:   r.typeHists[typ].Summary(),
		}
		completed += c + a
		res.Aborted += a
	}
	if completed > 0 {
		res.AbortRate = float64(res.Aborted) / float64(completed)
	}
	return res, nil
}

// verifyDurableRecovery is the -durable run's ending: for every group,
// copy the on-disk state as it stands — exactly the image a kill -9
// right now would leave, since WAL appends hit the page cache
// unbuffered — recover it into a fresh executor, and check that (a) the
// recovered shard digest is byte-identical to the live one and (b) the
// replay length equals the live engine's records since its last
// snapshot, i.e. recovery work is bounded by snapshot age, not run
// length. Either check failing fails the run.
func (r *run) verifyDurableRecovery() (*DurableResult, error) {
	cfg := r.cfg
	res := &DurableResult{DigestsMatch: true}
	var totalElapsed time.Duration
	for _, g := range r.proto.groups {
		de := r.proto.durables[g]
		live := r.proto.execByGroup[g]
		if de == nil || live == nil {
			return nil, fmt.Errorf("loadgen: group %d has no durable engine or executor", g)
		}
		if err := de.Err(); err != nil {
			return nil, fmt.Errorf("loadgen: group %d durable backend failed mid-run: %w", g, err)
		}
		image, err := copyDirImage(filepath.Join(cfg.DurableDir, fmt.Sprintf("group-%d", g)))
		if err != nil {
			return nil, err
		}
		eng, err := r.proto.protoFactory(g)
		if err != nil {
			os.RemoveAll(image)
			return nil, err
		}
		fresh, err := store.Wrap(eng, store.Config{Warehouse: g, Seed: cfg.StoreSeed}, false)
		if err != nil {
			os.RemoveAll(image)
			return nil, err
		}
		rde, err := durable.Wrap(fresh, durable.Options{
			Dir:           image,
			SnapshotEvery: cfg.DurableSnapshotEvery,
			FsyncEvery:    -1, // verification only reads; never fsync
			Decode:        r.proto.snapDecode,
		})
		if err != nil {
			os.RemoveAll(image)
			return nil, fmt.Errorf("loadgen: group %d crash-image recovery: %w", g, err)
		}
		stats := rde.Recovery()
		rde.Close()
		os.RemoveAll(image)

		if got, want := fresh.Shard().Digest(), live.Shard().Digest(); got != want {
			return nil, fmt.Errorf("loadgen: group %d recovered shard digest diverges from live state", g)
		}
		if since := de.SinceSnapshot(); stats.ReplayedEnvelopes != since {
			return nil, fmt.Errorf("loadgen: group %d replayed %d envelopes but %d were appended since the last snapshot (snapshot age does not bound recovery)",
				g, stats.ReplayedEnvelopes, since)
		}
		res.Groups++
		if stats.SnapshotEpoch > 0 {
			res.SnapshottedGroups++
		}
		res.ReplayedEnvelopes += stats.ReplayedEnvelopes
		if stats.ReplayedEnvelopes > res.MaxReplayedEnvelopes {
			res.MaxReplayedEnvelopes = stats.ReplayedEnvelopes
		}
		res.TornTailBytes += stats.TornTailBytes
		totalElapsed += stats.Elapsed
		if us := stats.Elapsed.Microseconds(); us > res.RecoveryMaxUs {
			res.RecoveryMaxUs = us
		}
	}
	if res.Groups > 0 {
		res.RecoveryMeanUs = float64(totalElapsed.Microseconds()) / float64(res.Groups)
	}
	return res, nil
}

// copyDirImage copies a durable directory into a fresh temp dir — the
// crash image the recovery verification owns (recovering in place would
// race the live engine's open WAL).
func copyDirImage(src string) (string, error) {
	dst, err := os.MkdirTemp("", "flexload-crash-")
	if err != nil {
		return "", err
	}
	ents, err := os.ReadDir(src)
	if err != nil {
		os.RemoveAll(dst)
		return "", err
	}
	for _, ent := range ents {
		if ent.IsDir() {
			continue
		}
		data, err := os.ReadFile(filepath.Join(src, ent.Name()))
		if err != nil {
			os.RemoveAll(dst)
			return "", err
		}
		if err := os.WriteFile(filepath.Join(dst, ent.Name()), data, 0o644); err != nil {
			os.RemoveAll(dst)
			return "", err
		}
	}
	return dst, nil
}

// doRead serves one read-only transaction under the configured
// routing, at the client's session barrier:
//
//   - Replicas <= 1: the PR 4 local fast path — the client is
//     co-located with the one serving node and reads it directly.
//   - FollowerReads: the client reads its local follower replica
//     (round-robin over the group's followers) through the lease gate;
//     an expired lease falls back to the remote serving node and is
//     counted.
//   - otherwise (the leader-only baseline): the client is NOT
//     co-located with the serving node — the read crosses the
//     transport as a KindRead transaction and the reply carries the
//     value and watermark back.
//
// Every serve folds the read's watermark into the session barrier
// (monotonic reads across replicas). wait selects closed-loop
// semantics for the remote form; synchronous serves ignore it.
func (c *clientProc) doRead(gen *gtpcc.Gen, cfg Config, stop <-chan struct{}, wait bool) error {
	tx := gen.NextRead()
	if cfg.Replicas <= 1 {
		ex := c.run.proto.execByGroup[tx.Home]
		if ex == nil {
			return fmt.Errorf("loadgen: no executor for warehouse %d", tx.Home)
		}
		start := time.Now()
		res, err := ex.Read(tx, c.observedPrefix(tx.Home), cfg.Timeout)
		if err != nil {
			return err
		}
		c.foldRead(tx.Home, res.Watermark)
		c.recordRead(start, 0)
		return nil
	}
	if cfg.FollowerReads {
		reps := c.run.proto.followers[tx.Home]
		if len(reps) == 0 {
			return fmt.Errorf("loadgen: no follower replicas for warehouse %d", tx.Home)
		}
		rep := reps[c.rr.Add(1)%uint64(len(reps))]
		start := time.Now()
		res, err := rep.Read(tx, c.observedPrefix(tx.Home), cfg.Timeout)
		if err == nil {
			c.foldRead(tx.Home, res.Watermark)
			c.recordRead(start, rep.Idx())
			return nil
		}
		if !errors.Is(err, store.ErrLeaseExpired) {
			return err
		}
		c.run.leaseRefusals.Add(1)
		// Lease lapsed: fall back to the serving node, remotely.
	}
	return c.remoteRead(tx, cfg, stop, wait)
}

// remoteRead ships one read to the serving node as a KindRead
// transaction. With wait (closed loop) it blocks for the reply; the
// reply's watermark folds into the session barrier via the ordinary
// reply path (onReplies), and completion lands in the read histogram
// (complete).
func (c *clientProc) remoteRead(tx gtpcc.Tx, cfg Config, stop <-chan struct{}, wait bool) error {
	m := amcast.Message{
		ID:      amcast.NewMsgID(c.idx, readSeqBase+c.readSeq.Add(1)),
		Sender:  c.id,
		Dst:     []amcast.GroupID{tx.Home},
		Flags:   amcast.FlagRead,
		Payload: gtpcc.EncodeTx(tx),
	}
	st := c.issue(m, txMeta{typ: tx.Type, isRead: true}, wait, false)
	if !wait {
		return nil
	}
	select {
	case <-st.done:
		return nil
	case <-time.After(cfg.Timeout):
		return fmt.Errorf("loadgen: client %d remote read %s to warehouse %d timed out after %v",
			c.idx, m.ID, tx.Home, cfg.Timeout)
	case <-stop:
		return nil
	}
}

// readLoop is one dedicated read-only session: reads back-to-back at
// the session barrier under the configured routing, measuring read
// capacity while the write workload runs alongside.
func readLoop(c *clientProc, worker int, cfg Config, stop <-chan struct{}, errCh chan<- error) {
	gen, err := newGen(c, cfg.Workers+worker, cfg)
	if err != nil {
		sendErr(errCh, err)
		return
	}
	for {
		select {
		case <-stop:
			return
		default:
		}
		if err := c.doRead(gen, cfg, stop, true); err != nil {
			sendErr(errCh, err)
			return
		}
	}
}

// readRoll decides whether an iteration issues a fast-path read; the
// rng is private to the session, so the mix is deterministic per seed.
func readRoll(rng *rand.Rand, cfg Config) bool {
	return cfg.ReadPct > 0 && rng.Float64()*100 < cfg.ReadPct
}

// readRNG derives a session's read-mix coin; its stream is independent
// of the workload generator's.
func readRNG(cfg Config, client, worker int) *rand.Rand {
	return rand.New(rand.NewSource(cfg.Seed ^ 0x5EED_BEEF + int64(client)*15485863 + int64(worker)*32452843))
}

// closedLoop is one session: issue, wait for every destination's reply,
// repeat. With a read mix, ReadPct percent of iterations issue a
// fast-path read instead of a multicast.
func closedLoop(c *clientProc, worker int, cfg Config, stop <-chan struct{}, errCh chan<- error) {
	gen, err := newGen(c, worker, cfg)
	if err != nil {
		sendErr(errCh, err)
		return
	}
	reads := readRNG(cfg, c.idx, worker)
	seq := uint64(worker) << 24 // per-worker id space within the client
	for {
		select {
		case <-stop:
			return
		default:
		}
		if readRoll(reads, cfg) {
			if err := c.doRead(gen, cfg, stop, true); err != nil {
				sendErr(errCh, err)
				return
			}
			continue
		}
		seq++
		m, meta := nextMessage(c, gen, cfg, seq)
		tx := c.issue(m, meta, true, false)
		select {
		case <-tx.done:
		case <-time.After(cfg.Timeout):
			sendErr(errCh, fmt.Errorf("loadgen: client %d worker %d: tx %s to %v timed out after %v",
				c.idx, worker, m.ID, m.Dst, cfg.Timeout))
			return
		case <-stop:
			return
		}
	}
}

// openLoop issues at a fixed rate per client process, completions
// resolving asynchronously through the reply handler. Pacing is
// burst-based: a millisecond ticker issues however many transactions the
// elapsed time owes, so the offered rate is honored far beyond the
// ticker resolution. With -sessions the loop runs session-multiplexed
// instead (openLoopSessions).
func openLoop(c *clientProc, cfg Config, stop <-chan struct{}, errCh chan<- error) {
	if cfg.Sessions > 0 {
		openLoopSessions(c, cfg, stop, errCh)
		return
	}
	gen, err := newGen(c, 0, cfg)
	if err != nil {
		sendErr(errCh, err)
		return
	}
	reads := readRNG(cfg, c.idx, 0)
	t := time.NewTicker(time.Millisecond)
	defer t.Stop()
	start := time.Now()
	seq := uint64(0)
	for {
		select {
		case <-stop:
			return
		case now := <-t.C:
			owed := uint64(cfg.Rate * now.Sub(start).Seconds())
			for seq < owed {
				seq++
				if readRoll(reads, cfg) {
					// A read slot: local and follower reads serve
					// synchronously and never occupy the outstanding
					// budget; remote reads issue asynchronously and
					// resolve through the reply handler (they do
					// occupy the in-flight table until answered).
					if err := c.doRead(gen, cfg, stop, false); err != nil {
						sendErr(errCh, err)
						return
					}
					continue
				}
				c.mu.Lock()
				outstanding := len(c.inflight)
				c.mu.Unlock()
				if outstanding >= cfg.MaxOutstanding {
					if c.run.measuring.Load() {
						c.run.shed.Add(owed - seq + 1)
					}
					seq = owed
					break
				}
				m, meta := nextMessage(c, gen, cfg, seq)
				c.issue(m, meta, false, false)
			}
		}
	}
}

// openLoopSessions is the session-multiplexed open loop (-sessions):
// the process's offered rate splits evenly across its virtual sessions
// — round-robin, so the issue order over the shared connection
// interleaves sessions while each session's own requests stay FIFO —
// and every issuance passes that session's admission gate (token
// bucket + outstanding cap, admission.go). A refused issuance is shed
// on the spot and the loop moves on: one stalled session (its admitted
// transactions stuck behind a latency spike) cannot make the process
// queue work for it, and cannot stop the other sessions from issuing.
// Admitted requests carry the session id on the envelope (FlagSession),
// so replies resolve the session's barrier and outstanding slot.
func openLoopSessions(c *clientProc, cfg Config, stop <-chan struct{}, errCh chan<- error) {
	gen, err := newGen(c, 0, cfg)
	if err != nil {
		sendErr(errCh, err)
		return
	}
	reads := readRNG(cfg, c.idx, 0)
	gate := newAdmission(cfg)
	t := time.NewTicker(time.Millisecond)
	defer t.Stop()
	start := time.Now()
	seq := uint64(0)
	for {
		select {
		case <-stop:
			return
		case now := <-t.C:
			owed := uint64(cfg.Rate * now.Sub(start).Seconds())
			nowNs := now.UnixNano()
			for seq < owed {
				seq++
				if readRoll(reads, cfg) {
					if err := c.doRead(gen, cfg, stop, false); err != nil {
						sendErr(errCh, err)
						return
					}
					continue
				}
				s := c.sessions[seq%uint64(len(c.sessions))]
				if !gate.admit(s, nowNs) {
					if c.run.measuring.Load() {
						c.run.shed.Add(1)
					}
					continue
				}
				m, meta := nextMessage(c, gen, cfg, seq)
				m.Flags |= amcast.FlagSession
				m.Session = s.id
				meta.sess = s
				c.issue(m, meta, false, false)
			}
		}
	}
}

// flushLoop issues one FlagFlush multicast to all groups per period,
// waiting for delivery everywhere before the next (the distinguished
// flush process of §4.3). A flush that times out fails the run: a
// benchmark silently running without garbage collection would publish
// numbers for a different system.
func flushLoop(c *clientProc, cfg Config, proto *protocolDeployment, stop <-chan struct{}, errCh chan<- error) {
	t := time.NewTicker(cfg.FlushEvery)
	defer t.Stop()
	seq := uint64(1) << 38 // clear of every worker's id space
	for {
		select {
		case <-stop:
			return
		case <-t.C:
		}
		seq++
		m := amcast.Message{
			ID:     amcast.NewMsgID(c.idx, seq),
			Sender: c.id,
			Dst:    append([]amcast.GroupID(nil), proto.groups...),
			Flags:  amcast.FlagFlush,
		}
		tx := c.issue(m, txMeta{}, true, true)
		select {
		case <-tx.done:
		case <-time.After(cfg.Timeout):
			sendErr(errCh, fmt.Errorf("loadgen: flush multicast %s timed out after %v (GC stalled)",
				m.ID, cfg.Timeout))
			return
		case <-stop:
			return
		}
	}
}

func newGen(c *clientProc, worker int, cfg Config) (*gtpcc.Gen, error) {
	home := c.run.proto.groups[c.idx%len(c.run.proto.groups)]
	rng := rand.New(rand.NewSource(cfg.Seed + int64(c.idx)*7919 + int64(worker)*104729))
	return gtpcc.New(gtpcc.Config{
		Home:       home,
		Nearest:    c.run.proto.nearest(home),
		Locality:   cfg.Locality,
		GlobalOnly: cfg.GlobalOnly,
		Zipf:       cfg.Zipf,
	}, rng)
}

func nextMessage(c *clientProc, gen *gtpcc.Gen, cfg Config, seq uint64) (amcast.Message, txMeta) {
	tx := gen.Next()
	m := amcast.Message{
		ID:     amcast.NewMsgID(c.idx, seq),
		Sender: c.id,
		Dst:    tx.Dst,
	}
	if cfg.Execute {
		if cfg.PayloadSize > tx.PayloadSize {
			tx.PayloadSize = cfg.PayloadSize // padding only; detail wins otherwise
		}
		m.Payload = gtpcc.EncodeTx(tx)
		return m, txMeta{typ: tx.Type, amount: tx.Amount}
	}
	size := tx.PayloadSize
	if cfg.PayloadSize > 0 {
		size = cfg.PayloadSize
	}
	m.Payload = make([]byte, size)
	return m, txMeta{typ: tx.Type}
}

func sendErr(ch chan<- error, err error) {
	select {
	case ch <- err:
	default:
	}
}
