package loadgen

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

func shortCfg() Config {
	return Config{
		Clients:  2,
		Workers:  8,
		Warmup:   100 * time.Millisecond,
		Duration: 400 * time.Millisecond,
		Timeout:  20 * time.Second,
	}
}

// TestRunInMemShort is the benchmark subsystem's smoke test: a short
// closed-loop run on the in-memory transport completes transactions and
// produces a self-consistent, validatable report.
func TestRunInMemShort(t *testing.T) {
	for _, batch := range []int{1, 16} {
		cfg := shortCfg()
		cfg.MaxBatch = batch
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("batch=%d: %v", batch, err)
		}
		if res.Completed == 0 || res.Throughput <= 0 {
			t.Fatalf("batch=%d: nothing completed: %+v", batch, res)
		}
		if res.Latency.P50 == 0 || res.Latency.P99 < res.Latency.P50 {
			t.Fatalf("batch=%d: implausible latency summary: %+v", batch, res.Latency)
		}
		if batch == 1 && res.BatchesSent != res.EnvelopesSent {
			t.Fatalf("batch=1 must send per envelope: %+v", res)
		}
		path := filepath.Join(t.TempDir(), "bench.json")
		rep := NewReport(cfg, res)
		if err := rep.WriteFile(path); err != nil {
			t.Fatal(err)
		}
		back, err := ValidateFile(path)
		if err != nil {
			t.Fatalf("batch=%d: report failed validation: %v", batch, err)
		}
		if back.Config.MaxBatch != batch || back.Results.Completed != res.Completed {
			t.Fatalf("batch=%d: report round trip mangled: %+v", batch, back)
		}
	}
}

// TestRunTCPShort drives the same smoke over loopback TCP.
func TestRunTCPShort(t *testing.T) {
	cfg := shortCfg()
	cfg.Transport = "tcp"
	cfg.Groups = 4 // fewer listeners: keep the test light
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed == 0 {
		t.Fatalf("nothing completed: %+v", res)
	}
}

// TestRunOpenLoopShort checks the open-loop pacer: offered load is
// honored (or shed under the outstanding cap) and completions resolve
// through the asynchronous reply path.
func TestRunOpenLoopShort(t *testing.T) {
	cfg := shortCfg()
	cfg.Rate = 2000
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed == 0 {
		t.Fatalf("nothing completed: %+v", res)
	}
	if res.Issued == 0 {
		t.Fatalf("pacer issued nothing: %+v", res)
	}
}

// checkExecuteResult asserts the execute-mode section is present and
// self-consistent.
func checkExecuteResult(t *testing.T, res *Result) {
	t.Helper()
	ex := res.Execute
	if ex == nil {
		t.Fatal("execute run produced no execution result")
	}
	if !ex.InvariantsOK || !ex.ReplicaDigestsOK {
		t.Fatalf("audits failed: %+v", ex)
	}
	if ex.TxApplied == 0 || len(ex.GlobalDigest) != 64 {
		t.Fatalf("implausible execution result: %+v", ex)
	}
	for typ, st := range ex.PerType {
		if st.Aborted > 0 && typ != "new-order" {
			t.Fatalf("%s aborted %d times; only new-orders roll back", typ, st.Aborted)
		}
	}
}

// TestRunExecuteInMem drives the store-backed benchmark: transactions
// execute at every involved shard, verdicts flow back on replies, the
// run drains and the cross-shard invariants and replica digests hold.
// The batched and unbatched paths must both execute correctly.
func TestRunExecuteInMem(t *testing.T) {
	for _, batch := range []int{1, 16} {
		cfg := shortCfg()
		cfg.Execute = true
		cfg.MaxBatch = batch
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("batch=%d: %v", batch, err)
		}
		if res.Completed == 0 {
			t.Fatalf("batch=%d: nothing completed", batch)
		}
		checkExecuteResult(t, res)

		path := filepath.Join(t.TempDir(), "bench.json")
		if err := NewReport(cfg, res).WriteFile(path); err != nil {
			t.Fatal(err)
		}
		back, err := ValidateFile(path)
		if err != nil {
			t.Fatalf("batch=%d: execute report failed validation: %v", batch, err)
		}
		if !back.Config.Execute || back.Results.Execute == nil {
			t.Fatalf("batch=%d: execute section lost in round trip", batch)
		}
	}
}

// TestRunExecuteTCP drives store execution over loopback TCP: the
// result byte must survive the wire codec for verdicts to reach
// clients.
func TestRunExecuteTCP(t *testing.T) {
	cfg := shortCfg()
	cfg.Execute = true
	cfg.Transport = "tcp"
	cfg.Groups = 4
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed == 0 {
		t.Fatal("nothing completed")
	}
	checkExecuteResult(t, res)
}

// TestRunExecuteDeterministicDigest runs the same seeded closed-loop
// workload twice; completion interleavings differ, but the audits must
// hold in both runs and the final global digest must be reported.
func TestRunExecuteDeterministicDigest(t *testing.T) {
	cfg := shortCfg()
	cfg.Execute = true
	cfg.Protocol = "skeen"
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	checkExecuteResult(t, res)
}

// TestConfigValidation rejects unknown transports and protocols.
// TestRunReadMix exercises the local-read fast path under load: half
// the iterations are fast-path reads, measured in their own histogram,
// while the multicast path and every execute-mode audit stay intact.
func TestRunReadMix(t *testing.T) {
	cfg := shortCfg()
	cfg.Execute = true
	cfg.ReadPct = 50
	cfg.Zipf = 1.3
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed == 0 {
		t.Fatalf("no multicast transactions completed: %+v", res)
	}
	if res.Reads == 0 || res.ReadLatency == nil || res.ReadLatency.Count == 0 {
		t.Fatalf("read mix measured no fast-path reads: %+v", res)
	}
	if res.TotalThroughput <= res.Throughput {
		t.Fatalf("total throughput %v not above write throughput %v", res.TotalThroughput, res.Throughput)
	}
	// Fast reads must be far cheaper than the multicast path.
	if res.ReadLatency.Mean >= res.Latency.Mean {
		t.Fatalf("fast reads slower than multicast writes: read mean %v vs write mean %v",
			res.ReadLatency.Mean, res.Latency.Mean)
	}
	if res.Execute == nil || !res.Execute.InvariantsOK || !res.Execute.ReplicaDigestsOK {
		t.Fatalf("execute audits failed under read mix: %+v", res.Execute)
	}
	// The report round-trips through validation with the read section.
	path := filepath.Join(t.TempDir(), "readmix.json")
	if err := NewReport(cfg, res).WriteFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := ValidateFile(path); err != nil {
		t.Fatal(err)
	}
}

// TestReadMixRequiresExecute pins the config contract.
func TestReadMixRequiresExecute(t *testing.T) {
	cfg := shortCfg()
	cfg.ReadPct = 50
	if _, err := Run(cfg); err == nil {
		t.Fatal("read mix without execute accepted")
	}
	cfg = shortCfg()
	cfg.Execute = true
	cfg.ReadPct = 101
	if _, err := Run(cfg); err == nil {
		t.Fatal("read percentage above 100 accepted")
	}
	cfg = shortCfg()
	cfg.Zipf = 0.5
	if _, err := Run(cfg); err == nil {
		t.Fatal("invalid zipf parameter accepted")
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := Run(Config{Transport: "carrier-pigeon"}); err == nil {
		t.Fatal("bad transport accepted")
	}
	if _, err := Run(Config{Protocol: "two-phase-wish"}); err == nil {
		t.Fatal("bad protocol accepted")
	}
	if _, err := Run(Config{Groups: 1}); err == nil {
		t.Fatal("single group accepted")
	}
}

// TestValidateFileRejectsGarbage covers the CI gate's failure modes.
func TestValidateFileRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	for name, content := range map[string]string{
		"notjson.json": "}{",
		"schema.json":  `{"schema":"flexload/v0","results":{"completed":1}}`,
		"empty.json":   `{"schema":"flexload/v1"}`,
		"zero.json":    `{"schema":"flexload/v1","results":{"completed":0}}`,
	} {
		path := filepath.Join(dir, name)
		if err := writeFile(path, content); err != nil {
			t.Fatal(err)
		}
		if _, err := ValidateFile(path); err == nil {
			t.Fatalf("%s accepted", name)
		}
	}
}

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}

// TestRunFollowerReads deploys the replicated read path: every group
// gains follower read replicas, dedicated read sessions hammer them at
// the session barrier, and the report carries the per-replica read
// breakdown. With follower reads on, the followers (not the serving
// node) serve the reads.
func TestRunFollowerReads(t *testing.T) {
	cfg := shortCfg()
	cfg.Execute = true
	cfg.ReadPct = 25
	cfg.Replicas = 3
	cfg.FollowerReads = true
	cfg.ReadWorkers = 1
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed == 0 || res.Reads == 0 {
		t.Fatalf("run measured nothing: %+v", res)
	}
	if len(res.ReadsPerReplica) != 3 {
		t.Fatalf("reads_per_replica has %d entries, want 3", len(res.ReadsPerReplica))
	}
	if res.ReadsPerReplica[1]+res.ReadsPerReplica[2] == 0 {
		t.Fatalf("followers served nothing: %v", res.ReadsPerReplica)
	}
	var sum uint64
	for _, n := range res.ReadsPerReplica {
		sum += n
	}
	if sum != res.Reads {
		t.Fatalf("per-replica counts %v do not sum to reads %d", res.ReadsPerReplica, res.Reads)
	}
	if res.Execute == nil || !res.Execute.InvariantsOK {
		t.Fatalf("execute audits failed under follower reads: %+v", res.Execute)
	}
	path := filepath.Join(t.TempDir(), "follower.json")
	if err := NewReport(cfg, res).WriteFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := ValidateFile(path); err != nil {
		t.Fatal(err)
	}
}

// TestRunTracedStages runs with lifecycle tracing on and checks the
// stage decomposition: sampled record count tracks 1-in-N of
// completions, stage summaries appear in pipeline order, and the
// report's stages section survives write + validation (which also
// enforces the telescoping count-weighted mean identity).
func TestRunTracedStages(t *testing.T) {
	cfg := shortCfg()
	cfg.Execute = true
	cfg.TraceSample = 4
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed == 0 {
		t.Fatal("nothing completed")
	}
	st := res.Stages
	if st == nil {
		t.Fatalf("traced run produced no stages section: %+v", res)
	}
	if st.SampleEvery != 4 {
		t.Fatalf("sample_every = %d, want 4", st.SampleEvery)
	}
	// 1-in-N sampling: the sampled population is every 4th sequence
	// number, so records sits near completed/4. Allow wide slack for
	// requests in flight at the deadline and per-client remainders.
	lo, hi := res.Completed/8, res.Completed/2
	if st.Records < lo || st.Records > hi {
		t.Fatalf("records = %d for %d completed; want within [%d, %d] (≈1 in 4)",
			st.Records, res.Completed, lo, hi)
	}
	if st.E2E.Count != st.Records {
		t.Fatalf("e2e count %d != records %d", st.E2E.Count, st.Records)
	}
	// The execute stage must be present on a store-backed run, and all
	// summaries must arrive in pipeline order with samples.
	seen := map[string]bool{}
	for _, sg := range st.Stages {
		if sg.Count == 0 {
			t.Fatalf("stage %s has no samples", sg.Stage)
		}
		seen[sg.Stage] = true
	}
	for _, want := range []string{"ingress", "ordering", "execute", "reply"} {
		if !seen[want] {
			t.Fatalf("stage %q missing from decomposition: %+v", want, st.Stages)
		}
	}
	// WriteFile validates on write; ValidateFile re-validates on read —
	// both run validateStages on the section.
	path := filepath.Join(t.TempDir(), "traced.json")
	if err := NewReport(cfg, res).WriteFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := ValidateFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Results.Stages == nil || back.Config.TraceSample != 4 {
		t.Fatalf("stages section lost in round trip: %+v", back.Config)
	}

	// Untraced control: no stages section (negative disables; 0 would
	// fill to the default of 16).
	cfg.TraceSample = -1
	res2, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Stages != nil {
		t.Fatalf("untraced run grew a stages section: %+v", res2.Stages)
	}
}

// TestRunLeaderReadsRemote is the replicated leader-only baseline:
// reads cross the transport as KindRead transactions to the serving
// node, resolve through the reply path, and none may be refused.
func TestRunLeaderReadsRemote(t *testing.T) {
	cfg := shortCfg()
	cfg.Execute = true
	cfg.ReadPct = 25
	cfg.Replicas = 2
	cfg.ReadWorkers = 1
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reads == 0 {
		t.Fatalf("no remote reads measured: %+v", res)
	}
	if res.RemoteReads != res.Reads {
		t.Fatalf("leader-only run served %d of %d reads remotely", res.RemoteReads, res.Reads)
	}
	if res.ReadsPerReplica[1] != 0 {
		t.Fatalf("leader-only run read a follower: %v", res.ReadsPerReplica)
	}
	// Remote reads pay a transport round trip; the write path must
	// still dominate them (they skip the ordering round entirely).
	if res.ReadLatency == nil || res.ReadLatency.Count == 0 {
		t.Fatal("remote reads measured no latency")
	}
}

// TestFollowerReadsConfigContract pins the new knobs' validation.
func TestFollowerReadsConfigContract(t *testing.T) {
	cfg := shortCfg()
	cfg.Replicas = 2
	if _, err := Run(cfg); err == nil {
		t.Fatal("-replicas without -execute accepted")
	}
	cfg = shortCfg()
	cfg.Execute = true
	cfg.FollowerReads = true
	if _, err := Run(cfg); err == nil {
		t.Fatal("-follower-reads without -replicas accepted")
	}
	cfg = shortCfg()
	cfg.ReadWorkers = 2
	if _, err := Run(cfg); err == nil {
		t.Fatal("-read-workers without -execute accepted")
	}
}

// TestRunSessionsOpenLoop is the session-multiplexed open loop end to
// end on the in-memory transport: ~10^3 virtual sessions per client
// ride the process's single connection, the adaptive controller runs
// the nodes, and the report carries a validatable SLO section with a
// controller trajectory.
func TestRunSessionsOpenLoop(t *testing.T) {
	cfg := shortCfg()
	cfg.Rate = 4000
	cfg.Sessions = 1024
	cfg.Adaptive = true
	cfg.SLOMs = 200
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed == 0 || res.Issued == 0 {
		t.Fatalf("session-multiplexed run measured nothing: %+v", res)
	}
	slo := res.SLO
	if slo == nil {
		t.Fatalf("-slo-ms run produced no slo section: %+v", res)
	}
	if slo.TargetMs != 200 || slo.Sessions != 1024 {
		t.Fatalf("slo config echo mangled: %+v", slo)
	}
	if slo.GoodCompleted > res.Completed {
		t.Fatalf("good %d exceeds completed %d", slo.GoodCompleted, res.Completed)
	}
	if len(slo.Trajectory) == 0 {
		t.Fatalf("no controller trajectory sampled over a %v window", cfg.Duration)
	}
	for i, p := range slo.Trajectory {
		if p.Batch < 1 || p.FlushIntervalUs < 50 {
			t.Fatalf("trajectory point %d outside the controller range: %+v", i, p)
		}
	}
	path := filepath.Join(t.TempDir(), "slo.json")
	if err := NewReport(cfg, res).WriteFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := ValidateFile(path)
	if err != nil {
		t.Fatalf("slo report failed validation: %v", err)
	}
	if back.Results.SLO == nil || !back.Config.Adaptive || back.Config.Sessions != 1024 {
		t.Fatalf("slo section lost in round trip: %+v", back.Config)
	}
}

// TestRunSessionsTCP drives session multiplexing over loopback TCP with
// store execution: many sessions share each client's one real socket,
// session ids cross the wire codec, per-session FIFO rides the
// connection's FIFO, and every execute-mode audit (verdicts, invariants,
// replica digests) must still hold.
func TestRunSessionsTCP(t *testing.T) {
	cfg := shortCfg()
	cfg.Transport = "tcp"
	cfg.Groups = 4
	cfg.Rate = 2000
	cfg.Sessions = 256
	cfg.Adaptive = true
	cfg.SLOMs = 500
	cfg.Execute = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed == 0 {
		t.Fatalf("nothing completed: %+v", res)
	}
	checkExecuteResult(t, res)
	if res.SLO == nil {
		t.Fatal("no slo section over TCP")
	}
}

// TestRunSessionsShedUnderOverload overdrives a session-multiplexed
// run far past capacity with a tight per-session budget: admission must
// shed (not queue) the excess, and the shed count must be visible in
// the SLO section's shed rate.
func TestRunSessionsShedUnderOverload(t *testing.T) {
	cfg := shortCfg()
	cfg.Rate = 50000 // far past what the deployment completes
	cfg.Sessions = 16
	cfg.SessionOutstanding = 1
	cfg.SessionBurst = 1
	cfg.SLOMs = 100
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Shed == 0 {
		t.Fatalf("overdriven run shed nothing: %+v", res)
	}
	if res.SLO == nil || res.SLO.ShedRate <= 0 {
		t.Fatalf("shed rate missing from slo section: %+v", res.SLO)
	}
}
