// Package experiments defines one reproducible configuration per table
// and figure of the paper's evaluation (§5), shared by cmd/flexbench and
// the repository's benchmarks. Each experiment returns structured results
// and can print itself in the paper's format.
//
// All experiments run the gTPC-C workload on the simulated 12-region WAN
// with single-process groups, exactly like the paper's setup (§5.2). The
// Scale knob shrinks virtual duration and client counts proportionally so
// the full suite also runs quickly under `go test -bench`.
package experiments

import (
	"fmt"
	"io"

	"flexcast/amcast"
	"flexcast/internal/harness"
	"flexcast/internal/overlay"
	"flexcast/internal/sim"
	"flexcast/internal/stats"
	"flexcast/internal/wan"
)

// Options tune an experiment run without changing its structure.
type Options struct {
	// Scale multiplies the virtual duration (1.0 = the paper's 60 s
	// runs). Benches use ~0.05.
	Scale float64
	// Seed drives all randomness.
	Seed int64
	// Verify records the runs and checks the atomic multicast properties
	// (slower; used by integration tests).
	Verify bool
}

func (o *Options) fill() {
	if o.Scale == 0 {
		o.Scale = 1
	}
}

// paperDuration is the paper's run length (60 virtual seconds).
const paperDuration sim.Time = 60_000_000

func (o Options) duration() sim.Time {
	d := sim.Time(float64(paperDuration) * o.Scale)
	if d < 2_000_000 {
		d = 2_000_000 // keep at least 2 virtual seconds after trimming
	}
	return d
}

func (o Options) run(cfg harness.Config) (*harness.Result, error) {
	cfg.Duration = o.duration()
	cfg.Seed = o.Seed
	if o.Verify {
		return harness.RunChecked(cfg)
	}
	return harness.Run(cfg)
}

// latencyClients is the paper's client count for latency experiments
// ("we consider configurations with 240 clients", §5.5).
const latencyClients = 240

// ---------------------------------------------------------------------
// Figure 1: communication overhead of hierarchical T1 at 90 % locality.
// ---------------------------------------------------------------------

// OverheadRow is one group's communication overhead.
type OverheadRow struct {
	Group    amcast.GroupID
	Overhead float64 // fraction in [0,1]
}

// Fig1Result is the per-group overhead of tree T1 (Figure 1).
type Fig1Result struct {
	Rows []OverheadRow
	Mean float64
}

// Fig1 reproduces Figure 1.
func Fig1(o Options) (*Fig1Result, error) {
	o.fill()
	res, err := o.run(harness.Config{
		Protocol:   harness.Hierarchical,
		Tree:       wan.T1(),
		Locality:   0.90,
		NumClients: latencyClients,
		GlobalOnly: true,
	})
	if err != nil {
		return nil, err
	}
	return newFig1Result(res), nil
}

func newFig1Result(res *harness.Result) *Fig1Result {
	out := &Fig1Result{}
	sum := 0.0
	for _, g := range wan.Groups() {
		ov := res.Metrics.Node(amcast.GroupNode(g)).Overhead()
		out.Rows = append(out.Rows, OverheadRow{Group: g, Overhead: ov})
		sum += ov
	}
	out.Mean = sum / float64(len(out.Rows))
	return out
}

// Print renders the figure as a table.
func (r *Fig1Result) Print(w io.Writer) {
	fmt.Fprintln(w, "Figure 1: communication overhead per group, hierarchical T1, 90% locality")
	fmt.Fprintln(w, "group  overhead")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%5d  %6.1f%%  %s\n", row.Group, row.Overhead*100, bar(row.Overhead, 40))
	}
	fmt.Fprintf(w, "mean   %6.1f%%\n", r.Mean*100)
}

// ---------------------------------------------------------------------
// Figure 5 / Table 2: the effect of overlays (FlexCast O1 vs O2,
// hierarchical T1/T2/T3) at 90 % locality.
// ---------------------------------------------------------------------

// LatencyRow is one configuration's per-destination latency distribution.
type LatencyRow struct {
	Label   string
	PerDest []*stats.Recorder // index 0 = 1st destination
}

// Fig5Result holds the overlay-comparison distributions.
type Fig5Result struct {
	Rows []LatencyRow
}

// Fig5Table2 reproduces Figure 5 and Table 2.
func Fig5Table2(o Options) (*Fig5Result, error) {
	o.fill()
	type cfg struct {
		label string
		c     harness.Config
	}
	cfgs := []cfg{
		{"FlexCast O1", harness.Config{Protocol: harness.FlexCast, Overlay: wan.O1()}},
		{"FlexCast O2", harness.Config{Protocol: harness.FlexCast, Overlay: wan.O2()}},
		{"Hierarchical T1", harness.Config{Protocol: harness.Hierarchical, Tree: wan.T1()}},
		{"Hierarchical T2", harness.Config{Protocol: harness.Hierarchical, Tree: wan.T2()}},
		{"Hierarchical T3", harness.Config{Protocol: harness.Hierarchical, Tree: wan.T3()}},
	}
	out := &Fig5Result{}
	for _, c := range cfgs {
		c.c.Locality = 0.90
		c.c.NumClients = latencyClients
		c.c.GlobalOnly = true
		c.c.FlushEvery = flushFor(c.c.Protocol)
		res, err := o.run(c.c)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", c.label, err)
		}
		out.Rows = append(out.Rows, LatencyRow{Label: c.label, PerDest: res.PerDest})
	}
	return out, nil
}

// Print renders Table 2 plus CDF sparklines (Figure 5).
func (r *Fig5Result) Print(w io.Writer) {
	fmt.Fprintln(w, "Table 2: latency percentiles (ms) per destination, gTPC-C 90% locality")
	printLatencyTable(w, r.Rows)
	fmt.Fprintln(w, "\nFigure 5: latency CDFs (sparkline = CDF over latency range)")
	printCDFs(w, r.Rows)
}

// ---------------------------------------------------------------------
// Figure 6: throughput vs number of clients at 99 % locality.
// ---------------------------------------------------------------------

// Fig6Point is one (clients, throughput) sample for one protocol.
type Fig6Point struct {
	Clients    int
	Throughput float64 // transactions ordered per second
}

// Fig6Result maps each protocol to its throughput curve.
type Fig6Result struct {
	Curves map[string][]Fig6Point
	Order  []string
}

// fig6ClientCounts is the paper's x axis.
var fig6ClientCounts = []int{24, 240, 480, 720, 960, 1200, 1440}

// Fig6 reproduces the throughput experiment. Server capacity is modelled
// as a serial per-envelope processing cost; FlexCast's history-carrying
// messages cost proportionally more, which reproduces its earlier
// saturation (paper: the curve bends at 960 clients).
func Fig6(o Options) (*Fig6Result, error) {
	o.fill()
	out := &Fig6Result{Curves: make(map[string][]Fig6Point)}
	for _, p := range []harness.Protocol{harness.Distributed, harness.Hierarchical, harness.FlexCast} {
		label := p.String()
		out.Order = append(out.Order, label)
		for _, n := range fig6ClientCounts {
			res, err := o.run(harness.Config{
				Protocol:      p,
				Locality:      0.99,
				NumClients:    n,
				GlobalOnly:    false, // the paper's standard mix, local + global
				ProcCostBase:  400,
				ProcCostPerKB: 900,
				FlushEvery:    flushFor(p),
			})
			if err != nil {
				return nil, fmt.Errorf("%s/%d clients: %w", label, n, err)
			}
			out.Curves[label] = append(out.Curves[label], Fig6Point{
				Clients:    n,
				Throughput: res.Throughput(),
			})
		}
	}
	return out, nil
}

func flushFor(p harness.Protocol) sim.Time {
	if p == harness.FlexCast {
		// The prototype's periodic garbage collection (§4.3).
		return 250_000
	}
	return 0
}

// Print renders the throughput curves.
func (r *Fig6Result) Print(w io.Writer) {
	fmt.Fprintln(w, "Figure 6: throughput (kops/sec) vs number of clients, 99% locality")
	fmt.Fprintf(w, "%-14s", "clients")
	for _, n := range fig6ClientCounts {
		fmt.Fprintf(w, "%8d", n)
	}
	fmt.Fprintln(w)
	for _, label := range r.Order {
		fmt.Fprintf(w, "%-14s", label)
		for _, pt := range r.Curves[label] {
			fmt.Fprintf(w, "%8.2f", pt.Throughput/1000)
		}
		fmt.Fprintln(w)
	}
}

// ---------------------------------------------------------------------
// Figure 7 / Table 3: latency per destination when varying locality.
// ---------------------------------------------------------------------

// Fig7Result holds per-locality, per-protocol latency distributions.
type Fig7Result struct {
	// Rows are labelled "<protocol> <locality>%".
	Rows []LatencyRow
}

// Fig7Table3 reproduces Figure 7 and Table 3.
func Fig7Table3(o Options) (*Fig7Result, error) {
	o.fill()
	out := &Fig7Result{}
	for _, p := range []harness.Protocol{harness.FlexCast, harness.Hierarchical, harness.Distributed} {
		for _, loc := range []float64{0.90, 0.95, 0.99} {
			res, err := o.run(harness.Config{
				Protocol:   p,
				Overlay:    wan.O1(),
				Tree:       wan.T1(),
				Locality:   loc,
				NumClients: latencyClients,
				GlobalOnly: true,
				FlushEvery: flushFor(p),
			})
			if err != nil {
				return nil, fmt.Errorf("%s/%v: %w", p, loc, err)
			}
			out.Rows = append(out.Rows, LatencyRow{
				Label:   fmt.Sprintf("%s %.0f%%", p, loc*100),
				PerDest: res.PerDest,
			})
		}
	}
	return out, nil
}

// Print renders Table 3 plus the Figure 7 CDFs.
func (r *Fig7Result) Print(w io.Writer) {
	fmt.Fprintln(w, "Table 3: latency percentiles (ms) per destination when varying locality")
	printLatencyTable(w, r.Rows)
	fmt.Fprintln(w, "\nFigure 7: latency CDFs")
	printCDFs(w, r.Rows)
}

// ---------------------------------------------------------------------
// Figure 8: the cost of exchanging histories (messages/s, average size,
// KB/s per node).
// ---------------------------------------------------------------------

// Fig8Node is one node's traffic profile.
type Fig8Node struct {
	Group    amcast.GroupID
	MsgsPerS float64
	AvgSize  float64
	KBPerS   float64
}

// Fig8Result maps each protocol to its per-node traffic profile, with
// nodes listed in the protocol's presentation order (C-DAG rank order
// for FlexCast, as in the paper's x axis).
type Fig8Result struct {
	PerProtocol map[string][]Fig8Node
	Order       []string
}

// Fig8 reproduces the message-cost experiment (99 % locality, 720
// clients).
func Fig8(o Options) (*Fig8Result, error) {
	o.fill()
	out := &Fig8Result{PerProtocol: make(map[string][]Fig8Node)}
	for _, p := range []harness.Protocol{harness.FlexCast, harness.Hierarchical, harness.Distributed} {
		label := p.String()
		out.Order = append(out.Order, label)
		res, err := o.run(harness.Config{
			Protocol:      p,
			Overlay:       wan.O1(),
			Tree:          wan.T1(),
			Locality:      0.99,
			NumClients:    720,
			GlobalOnly:    false,
			ProcCostBase:  400, // same server-capacity model as Figure 6
			ProcCostPerKB: 900,
			FlushEvery:    flushFor(p),
		})
		if err != nil {
			return nil, fmt.Errorf("%s: %w", label, err)
		}
		secs := float64(res.Cfg.Duration) / 1e6
		for _, g := range nodeOrder(p) {
			c := res.Metrics.Node(amcast.GroupNode(g))
			out.PerProtocol[label] = append(out.PerProtocol[label], Fig8Node{
				Group:    g,
				MsgsPerS: float64(c.EnvsReceived) / secs,
				AvgSize:  c.AvgReceivedSize(),
				KBPerS:   float64(c.BytesReceived) / secs / 1024,
			})
		}
	}
	return out, nil
}

// nodeOrder reproduces the x-axis ordering of the paper's Figure 8:
// C-DAG rank order for FlexCast and Distributed, tree BFS order for the
// hierarchical protocol.
func nodeOrder(p harness.Protocol) []amcast.GroupID {
	if p == harness.Hierarchical {
		t := wan.T1()
		order := []amcast.GroupID{t.Root()}
		for i := 0; i < len(order); i++ {
			order = append(order, t.Children(order[i])...)
		}
		return order
	}
	return wan.O1().Order()
}

// Print renders the three per-node charts as tables.
func (r *Fig8Result) Print(w io.Writer) {
	fmt.Fprintln(w, "Figure 8: per-node traffic (99% locality, 720 clients)")
	for _, label := range r.Order {
		fmt.Fprintf(w, "\n%s:\n", label)
		fmt.Fprintln(w, "node   msgs/s   avg size (B)   KB/s")
		var totKB float64
		for _, n := range r.PerProtocol[label] {
			fmt.Fprintf(w, "%4d  %7.0f   %12.1f  %6.1f\n", n.Group, n.MsgsPerS, n.AvgSize, n.KBPerS)
			totKB += n.KBPerS
		}
		fmt.Fprintf(w, "mean KB/s per node: %.1f\n", totKB/float64(len(r.PerProtocol[label])))
	}
}

// ---------------------------------------------------------------------
// Figure 9 / Table 4: overhead of the hierarchical trees when varying
// locality.
// ---------------------------------------------------------------------

// Fig9Row is the overhead profile of one (tree, locality) configuration.
type Fig9Row struct {
	Tree     string
	Locality float64
	PerGroup []OverheadRow
	Mean     float64
	Std      float64
	Max      float64
}

// Fig9Result holds every (tree, locality) overhead profile.
type Fig9Result struct {
	Rows []Fig9Row
}

// Fig9Table4 reproduces Figure 9 and Table 4.
func Fig9Table4(o Options) (*Fig9Result, error) {
	o.fill()
	trees := []struct {
		name string
		tree *overlay.Tree
	}{
		{"T1", wan.T1()}, {"T2", wan.T2()}, {"T3", wan.T3()},
	}
	out := &Fig9Result{}
	for _, tr := range trees {
		for _, loc := range []float64{0.90, 0.95, 0.99} {
			res, err := o.run(harness.Config{
				Protocol:   harness.Hierarchical,
				Tree:       tr.tree,
				Locality:   loc,
				NumClients: latencyClients,
				GlobalOnly: true,
			})
			if err != nil {
				return nil, fmt.Errorf("%s/%v: %w", tr.name, loc, err)
			}
			row := Fig9Row{Tree: tr.name, Locality: loc}
			var rec stats.Recorder
			for _, g := range wan.Groups() {
				ov := res.Metrics.Node(amcast.GroupNode(g)).Overhead()
				row.PerGroup = append(row.PerGroup, OverheadRow{Group: g, Overhead: ov})
				rec.Add(ov * 100)
			}
			row.Mean = rec.Mean()
			row.Std = rec.Std()
			row.Max = rec.Max()
			out.Rows = append(out.Rows, row)
		}
	}
	return out, nil
}

// Print renders Table 4 and the Figure 9 per-group bars.
func (r *Fig9Result) Print(w io.Writer) {
	fmt.Fprintln(w, "Table 4: mean (std) and max overhead of hierarchical trees vs locality")
	fmt.Fprintln(w, "tree  locality   mean (std)      max")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-4s  %5.0f%%   %6.2f%% (%.2f)  %5.1f%%\n",
			row.Tree, row.Locality*100, row.Mean, row.Std, row.Max)
	}
	fmt.Fprintln(w, "\nFigure 9: per-group overhead")
	for _, row := range r.Rows {
		if row.Locality == 0.90 && row.Tree != "T1" {
			continue // Figure 9 shows 95% and 99%; Figure 1 covers T1@90%
		}
		fmt.Fprintf(w, "%s @ %.0f%%:\n", row.Tree, row.Locality*100)
		for _, pg := range row.PerGroup {
			fmt.Fprintf(w, "  %2d %6.1f%% %s\n", pg.Group, pg.Overhead*100, bar(pg.Overhead, 30))
		}
	}
}

// ---------------------------------------------------------------------
// shared rendering helpers
// ---------------------------------------------------------------------

func printLatencyTable(w io.Writer, rows []LatencyRow) {
	fmt.Fprintf(w, "%-18s | %23s | %23s | %23s\n", "",
		"1st dest (90/95/99p)", "2nd dest (90/95/99p)", "3rd dest (90/95/99p)")
	for _, row := range rows {
		fmt.Fprintf(w, "%-18s |", row.Label)
		for k := 0; k < 3; k++ {
			fmt.Fprintf(w, " %s |", row.PerDest[k].PercentileRow(1000))
		}
		fmt.Fprintln(w)
	}
}

func printCDFs(w io.Writer, rows []LatencyRow) {
	for k := 0; k < 3; k++ {
		fmt.Fprintf(w, "%d%s destination:\n", k+1, ordinal(k+1))
		for _, row := range rows {
			if row.PerDest[k].Len() == 0 {
				continue
			}
			fmt.Fprintf(w, "  %-18s [%6.1f .. %7.1f ms] %s\n", row.Label,
				row.PerDest[k].Min()/1000, row.PerDest[k].Max()/1000,
				row.PerDest[k].Sparkline(40))
		}
	}
}

func ordinal(n int) string {
	switch n {
	case 1:
		return "st"
	case 2:
		return "nd"
	case 3:
		return "rd"
	default:
		return "th"
	}
}

func bar(frac float64, width int) string {
	n := int(frac * float64(width))
	if n > width {
		n = width
	}
	out := make([]rune, n)
	for i := range out {
		out[i] = '█'
	}
	return string(out)
}
