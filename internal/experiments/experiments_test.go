package experiments

import (
	"bytes"
	"strings"
	"testing"

	"flexcast/amcast"
	"flexcast/internal/wan"
)

// tiny runs experiments at the smallest useful scale.
var tiny = Options{Scale: 0.04, Seed: 7}

func TestFig1ShapeMatchesPaper(t *testing.T) {
	res, err := Fig1(tiny)
	if err != nil {
		t.Fatal(err)
	}
	byGroup := make(map[amcast.GroupID]float64)
	for _, row := range res.Rows {
		byGroup[row.Group] = row.Overhead
	}
	// The continental subtree roots (5 = America, 9 = Asia) dominate the
	// overhead; leaves have none (paper §5.8 and Figure 1).
	if byGroup[5] < 0.05 || byGroup[9] < 0.05 {
		t.Fatalf("subtree roots show no overhead: 5=%.3f 9=%.3f", byGroup[5], byGroup[9])
	}
	for _, leaf := range []amcast.GroupID{1, 2, 3, 4, 10, 11, 12, 6} {
		if byGroup[leaf] > 0.05 {
			t.Errorf("leaf group %d has overhead %.3f", leaf, byGroup[leaf])
		}
	}
	if res.Mean <= 0 || res.Mean > 0.3 {
		t.Fatalf("mean overhead = %.3f, outside plausible band", res.Mean)
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if !strings.Contains(buf.String(), "Figure 1") {
		t.Fatal("Print output missing title")
	}
}

func TestFig5O1BeatsO2OnFirstDestination(t *testing.T) {
	res, err := Fig5Table2(tiny)
	if err != nil {
		t.Fatal(err)
	}
	byLabel := make(map[string]LatencyRow)
	for _, row := range res.Rows {
		byLabel[row.Label] = row
	}
	o1 := byLabel["FlexCast O1"].PerDest[0].Percentile(90)
	o2 := byLabel["FlexCast O2"].PerDest[0].Percentile(90)
	if o1 > o2 {
		t.Errorf("O1 1st-dest p90 (%.0f) worse than O2 (%.0f); paper expects O1 <= O2", o1, o2)
	}
	// T3 (the star) must be the worst hierarchical tree at the first
	// destination: every message crosses the root.
	t1 := byLabel["Hierarchical T1"].PerDest[0].Percentile(90)
	t3 := byLabel["Hierarchical T3"].PerDest[0].Percentile(90)
	if t3 < t1 {
		t.Errorf("T3 1st-dest p90 (%.0f) better than T1 (%.0f); paper expects the star to bottleneck", t3, t1)
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if !strings.Contains(buf.String(), "Table 2") {
		t.Fatal("Print output missing title")
	}
}

func TestFig6FlexCastSaturatesBelowHierarchical(t *testing.T) {
	if testing.Short() {
		t.Skip("throughput sweep is slow")
	}
	res, err := Fig6(Options{Scale: 0.03, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	last := func(label string) float64 {
		c := res.Curves[label]
		return c[len(c)-1].Throughput
	}
	if last("FlexCast") >= last("Hierarchical") {
		t.Errorf("FlexCast plateau (%.0f) not below hierarchical (%.0f); paper expects FlexCast to saturate first",
			last("FlexCast"), last("Hierarchical"))
	}
	// Throughput must grow from 24 clients to the plateau for every
	// protocol.
	for label, curve := range res.Curves {
		if curve[0].Throughput >= curve[len(curve)-1].Throughput {
			t.Errorf("%s: no growth from 24 clients (%.0f) to 1440 (%.0f)",
				label, curve[0].Throughput, curve[len(curve)-1].Throughput)
		}
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if !strings.Contains(buf.String(), "Figure 6") {
		t.Fatal("Print output missing title")
	}
}

func TestFig7FlexCastWinsFirstDestination(t *testing.T) {
	res, err := Fig7Table3(tiny)
	if err != nil {
		t.Fatal(err)
	}
	byLabel := make(map[string]LatencyRow)
	for _, row := range res.Rows {
		byLabel[row.Label] = row
	}
	// The paper's headline (§5.6): FlexCast outperforms both baselines at
	// the first destination for every locality rate.
	for _, loc := range []string{"90%", "95%", "99%"} {
		fc := byLabel["FlexCast "+loc].PerDest[0].Percentile(90)
		hi := byLabel["Hierarchical "+loc].PerDest[0].Percentile(90)
		di := byLabel["Distributed "+loc].PerDest[0].Percentile(90)
		if fc > hi || fc > di {
			t.Errorf("locality %s: FlexCast 1st-dest p90 %.0f not best (hier %.0f, dist %.0f)",
				loc, fc, hi, di)
		}
	}
	// The distributed protocol is the most locality-sensitive baseline at
	// the first destination (paper: up to 29% reduction from 90% to 99%).
	d90 := byLabel["Distributed 90%"].PerDest[0].Percentile(90)
	d99 := byLabel["Distributed 99%"].PerDest[0].Percentile(90)
	if d99 > d90 {
		t.Errorf("distributed got slower with more locality: %.0f -> %.0f", d90, d99)
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if !strings.Contains(buf.String(), "Table 3") {
		t.Fatal("Print output missing title")
	}
}

func TestFig8HistoryCostGrowsUpTheDAG(t *testing.T) {
	if testing.Short() {
		t.Skip("720-client run is slow")
	}
	res, err := Fig8(Options{Scale: 0.02, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	fc := res.PerProtocol["FlexCast"]
	// The paper's Figure 8(a): average message size increases as nodes
	// ascend the C-DAG. Compare the low-rank third to the high-rank
	// third.
	lo := (fc[0].AvgSize + fc[1].AvgSize + fc[2].AvgSize) / 3
	hi := (fc[9].AvgSize + fc[10].AvgSize + fc[11].AvgSize) / 3
	if hi <= lo {
		t.Errorf("FlexCast message size does not grow up the DAG: low ranks %.0fB, high ranks %.0fB", lo, hi)
	}
	// Baseline protocols have flat message sizes.
	h := res.PerProtocol["Hierarchical"]
	var min, max float64 = 1 << 30, 0
	for _, n := range h {
		if n.AvgSize < min {
			min = n.AvgSize
		}
		if n.AvgSize > max {
			max = n.AvgSize
		}
	}
	if max > 2*min {
		t.Errorf("hierarchical message sizes not flat: %.0f..%.0f", min, max)
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if !strings.Contains(buf.String(), "Figure 8") {
		t.Fatal("Print output missing title")
	}
}

func TestFig9TreeOverheadProperties(t *testing.T) {
	res, err := Fig9Table4(tiny)
	if err != nil {
		t.Fatal(err)
	}
	rows := make(map[string]Fig9Row)
	for _, row := range res.Rows {
		rows[row.Tree+"@"+pct(row.Locality)] = row
	}
	// T1's overhead decreases as locality increases (paper Table 4:
	// 9.16% -> 7.33% -> 5.41%).
	if rows["T1@90"].Mean < rows["T1@99"].Mean {
		t.Errorf("T1 overhead grew with locality: %.2f%% -> %.2f%%",
			rows["T1@90"].Mean, rows["T1@99"].Mean)
	}
	// T3's root bears the maximum overhead of all configurations, and
	// its profile barely moves with locality (paper: constant 56% max).
	if rows["T3@90"].Max < rows["T1@90"].Max {
		t.Errorf("T3 max overhead (%.1f%%) below T1 (%.1f%%)", rows["T3@90"].Max, rows["T1@90"].Max)
	}
	for _, row := range res.Rows {
		// Only inner nodes can have overhead; every tree keeps the mean
		// within a plausible band.
		if row.Mean < 0 || row.Mean > 30 {
			t.Errorf("%s@%v: implausible mean overhead %.2f%%", row.Tree, row.Locality, row.Mean)
		}
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if !strings.Contains(buf.String(), "Table 4") {
		t.Fatal("Print output missing title")
	}
}

func pct(f float64) string {
	switch {
	case f > 0.985:
		return "99"
	case f > 0.935:
		return "95"
	default:
		return "90"
	}
}

func TestVerifiedRunPassesSpecChecks(t *testing.T) {
	// A full (small) gTPC-C FlexCast run with trace verification: the
	// integration test that ties workload, WAN, engines and checkers
	// together.
	_, err := Options{Scale: 0.04, Seed: 11, Verify: true}.run(harnessConfigForVerify())
	if err != nil {
		t.Fatal(err)
	}
}

func TestDeterminism(t *testing.T) {
	a, err := Fig1(Options{Scale: 0.04, Seed: 123})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fig1(Options{Scale: 0.04, Seed: 123})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Rows {
		if a.Rows[i] != b.Rows[i] {
			t.Fatalf("same seed produced different overhead at group %d", a.Rows[i].Group)
		}
	}
}

func TestNodeOrderCoversAllGroups(t *testing.T) {
	for _, p := range []struct {
		name string
		n    int
	}{{"flexcast", len(nodeOrder(1))}, {"hier", len(nodeOrder(3))}} {
		if p.n != wan.NumRegions {
			t.Fatalf("%s node order has %d entries", p.name, p.n)
		}
	}
}
