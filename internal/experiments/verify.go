package experiments

import "flexcast/internal/harness"

// harnessConfigForVerify is the configuration used by the verified
// integration test: FlexCast on O1 with garbage collection under the
// gTPC-C workload.
func harnessConfigForVerify() harness.Config {
	return harness.Config{
		Protocol:   harness.FlexCast,
		Locality:   0.90,
		NumClients: 48,
		GlobalOnly: true,
		FlushEvery: 250_000,
	}
}
