package chaos_test

import (
	"strings"
	"testing"

	"flexcast/internal/chaos"
)

// TestClosedLoopExploreClean exercises the closed-loop workload mode:
// clients chain each multicast to the previous completion, so the
// schedule stays densely loaded relative to the protocol's own progress
// while faults hit delivery, ack and flush phases that overlap far more
// than under the open-loop injector. Every safety property must still
// hold, the full workload must complete (closed-loop chaining survives
// crashes and partitions), and the runs must stay deterministic.
func TestClosedLoopExploreClean(t *testing.T) {
	deps := []chaos.Deployment{flexDeployment(groups5), skeenDeployment(groups5), treeDeployment()}
	for _, d := range deps {
		d := d
		t.Run(d.Name, func(t *testing.T) {
			opt := chaos.Options{Seed: 3, Schedules: 15, ClosedLoop: true, Messages: 15}
			rep, err := chaos.Explore(d, opt)
			if err != nil {
				t.Fatal(err)
			}
			if rep.Failed() {
				var sb strings.Builder
				rep.Print(&sb)
				t.Fatalf("invariant violations:\n%s", sb.String())
			}
			if rep.Faults.Crashes == 0 || rep.Faults.Retransmits == 0 {
				t.Fatalf("exploration injected no faults: %+v", rep.Faults)
			}
			// Closed-loop chaining must drive the whole per-client budget:
			// 3 clients x 15 messages plus the flush client's chain, per
			// schedule. Agreement already checks every multicast delivered
			// everywhere; here we check none was silently never issued.
			minPerSchedule := 3*15 + 4
			if rep.Multicasts < opt.Schedules*minPerSchedule {
				t.Fatalf("closed-loop chains stalled: %d multicasts over %d schedules (want >= %d each)",
					rep.Multicasts, opt.Schedules, minPerSchedule)
			}
		})
	}
}

// TestClosedLoopDeterminism verifies reproducibility of closed-loop
// schedules: the chained issue times depend on the simulation itself,
// and they must still be a pure function of the seed.
func TestClosedLoopDeterminism(t *testing.T) {
	d := flexDeployment(groups5)
	opt := chaos.Options{Seed: 11, ClosedLoop: true, Messages: 12}
	a, err := chaos.RunSchedule(d, opt, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := chaos.RunSchedule(d, opt, 42)
	if err != nil {
		t.Fatal(err)
	}
	if a.Multicasts != b.Multicasts || a.Deliveries != b.Deliveries || a.Events != b.Events {
		t.Fatalf("closed-loop schedule not deterministic:\n a=%+v\n b=%+v", a, b)
	}
}
