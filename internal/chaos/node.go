package chaos

import (
	"bytes"
	"fmt"

	"flexcast/amcast"
	"flexcast/internal/durable"
	"flexcast/internal/sim"
)

// node runs one group's engine under crash/recovery: it keeps a periodic
// state snapshot as simulated stable storage plus a write-ahead log of
// the inputs applied since, mirroring how a real group server would
// persist its state (internal/smr persists the input sequence in the
// Paxos log instead; §4.4). On recovery the engine is restored from the
// snapshot and the WAL is replayed with outputs suppressed — they were
// already transmitted before the crash.
//
// In durable mode (Options.Durable) the in-memory model is replaced by
// the real backend: inputs run through a durable.Engine writing an
// on-disk WAL and snapshot files, Crash abandons those files exactly as
// kill -9 would (optionally tearing the WAL tail mid-record), and
// Recover rebuilds a fresh engine from the directory, auditing the
// recovered state against the crashed engine's final state.
type node struct {
	id        amcast.NodeID
	eng       amcast.SnapshotEngine
	net       *sim.Network
	onDeliver func(d amcast.Delivery) error
	fail      func(err error)

	snapEvery int
	snap      amcast.Snapshot
	wal       []amcast.Envelope
	// delsSince counts deliveries since the snapshot; recovery replay
	// must regenerate exactly this many (a cheap determinism audit that
	// catches incomplete Snapshot/Restore implementations).
	delsSince int
	down      bool

	// Durable-mode state: the backend wrapping eng, its directory, the
	// factory that rebuilds a fresh inner engine on recovery, and the
	// snapshot decoder. preCrash holds the crashed engine's final state
	// (canonical snapshot bytes) for the recovery equality audit;
	// tornPending records that the last crash left a torn WAL tail the
	// next recovery must discard.
	de          *durable.Engine
	dir         string
	rebuild     func() (amcast.SnapshotEngine, error)
	decode      func([]byte) (amcast.Snapshot, error)
	preCrash    []byte
	tornPending bool

	// bugEvery is the test-only ordering-bug hook (Options.BugFlipEvery).
	bugEvery int
	batches  int
}

func newNode(id amcast.NodeID, eng amcast.SnapshotEngine, net *sim.Network, snapEvery int) *node {
	return &node{
		id:        id,
		eng:       eng,
		net:       net,
		snapEvery: snapEvery,
		snap:      eng.Snapshot(),
	}
}

// enableDurable switches the node to the real backend: the engine's
// inputs are logged to an on-disk WAL under dir, with snapshots on the
// node's cadence. The WAL is never fsynced — the fault model is process
// crash, where the page cache is the surviving image; tests inject torn
// tails explicitly.
func (n *node) enableDurable(dir string, rebuild func() (amcast.SnapshotEngine, error), decode func([]byte) (amcast.Snapshot, error)) error {
	de, err := durable.Wrap(n.eng, durable.Options{
		Dir:           dir,
		SnapshotEvery: n.snapEvery,
		FsyncEvery:    -1,
		Decode:        decode,
	})
	if err != nil {
		return err
	}
	n.de = de
	n.dir = dir
	n.rebuild = rebuild
	n.decode = decode
	return nil
}

// HandleEnvelope implements sim.Handler.
func (n *node) HandleEnvelope(env amcast.Envelope) {
	if n.down {
		// The network parks traffic for crashed nodes; reaching here
		// would mean the crash/restart bookkeeping is out of sync.
		n.fail(fmt.Errorf("chaos: envelope handed to crashed node %s", n.id))
		return
	}
	var outs []amcast.Output
	var dels []amcast.Delivery
	if n.de != nil {
		outs = n.de.OnEnvelope(env)
		dels = n.de.TakeDeliveries()
		if err := n.de.Err(); err != nil {
			n.fail(fmt.Errorf("chaos: durable backend of %s: %w", n.id, err))
		}
	} else {
		n.wal = append(n.wal, env)
		outs = n.eng.OnEnvelope(env)
		dels = n.eng.TakeDeliveries()
	}
	for _, o := range outs {
		n.net.Send(n.id, o.To, o.Env)
	}
	if n.bugEvery > 0 && len(dels) >= 2 {
		n.batches++
		if n.batches%n.bugEvery == 0 {
			dels[0], dels[1] = dels[1], dels[0]
		}
	}
	for _, d := range dels {
		n.delsSince++
		if err := n.onDeliver(d); err != nil {
			n.fail(err)
		}
		if d.Msg.Sender.IsClient() {
			n.net.Send(n.id, d.Msg.Sender, amcast.Envelope{
				Kind:      amcast.KindReply,
				From:      n.id,
				Msg:       d.Msg.Header(),
				TS:        d.Seq,
				Result:    d.Result,
				Watermark: d.Watermark,
			})
		}
	}
	if n.de != nil {
		// Snapshots and rotation happen inside the backend on its own
		// cadence; nothing to do here.
		return
	}
	if len(n.wal) >= n.snapEvery {
		n.snap = n.eng.Snapshot()
		n.wal = n.wal[:0]
		n.delsSince = 0
	}
}

// marshalState captures an engine's state as canonical snapshot bytes —
// the durable-mode recovery equality audit's fingerprint.
func marshalState(eng amcast.SnapshotEngine) ([]byte, error) {
	bs, ok := eng.Snapshot().(amcast.BinarySnapshot)
	if !ok {
		return nil, fmt.Errorf("chaos: engine %T snapshot has no binary form", eng)
	}
	return bs.MarshalBinary()
}

// Crash drops the node's volatile state. The caller also crashes the
// node on the network so inbound traffic parks. In durable mode the
// final state is fingerprinted first (the engine is quiescent between
// simulator events), then the backend is abandoned as kill -9 would
// leave it: appends already sit in the page cache — the crash image —
// so closing merely releases the descriptor, never adds durability.
func (n *node) Crash() {
	n.down = true
	if n.de == nil {
		return
	}
	if data, err := marshalState(n.eng); err != nil {
		n.fail(err)
	} else {
		n.preCrash = data
	}
	n.de.Close()
}

// TearTail appends a partial record to the node's abandoned WAL — the
// torn tail of a crash mid-append. The next Recover must discard it.
func (n *node) TearTail() error {
	if n.dir == "" {
		return fmt.Errorf("chaos: torn WAL tail on non-durable node %s", n.id)
	}
	if _, err := durable.TearTail(n.dir, nil); err != nil {
		return err
	}
	n.tornPending = true
	return nil
}

// Recover rebuilds the engine from stable storage: restore the last
// snapshot, then replay the write-ahead log. Outputs and deliveries
// regenerated by the replay are suppressed — determinism guarantees they
// are byte-identical to what the pre-crash engine already sent and
// recorded, and the replay verifies the delivery count as a cross-check.
// In durable mode a completely fresh engine is rebuilt from the on-disk
// image instead, with three audits: a torn tail injected at crash time
// must be detected and discarded, the replay length must stay within
// the snapshot cadence, and the recovered state must equal the crashed
// engine's final state byte for byte.
func (n *node) Recover() error {
	if !n.down {
		return fmt.Errorf("chaos: recover of live node %s", n.id)
	}
	n.down = false
	if n.de != nil {
		return n.recoverDurable()
	}
	if err := n.eng.Restore(n.snap); err != nil {
		return err
	}
	n.eng.TakeDeliveries() // restore resets delivery state; start drained
	replayed := 0
	for _, env := range n.wal {
		n.eng.OnEnvelope(env)
		replayed += len(n.eng.TakeDeliveries())
	}
	if replayed != n.delsSince {
		return fmt.Errorf("chaos: recovery of %s diverged: WAL replay produced %d deliveries, pre-crash run had %d",
			n.id, replayed, n.delsSince)
	}
	return nil
}

func (n *node) recoverDurable() error {
	fresh, err := n.rebuild()
	if err != nil {
		return err
	}
	de, err := durable.Wrap(fresh, durable.Options{
		Dir:           n.dir,
		SnapshotEvery: n.snapEvery,
		FsyncEvery:    -1,
		Decode:        n.decode,
	})
	if err != nil {
		return err
	}
	st := de.Recovery()
	if n.tornPending && st.TornTailBytes == 0 {
		return fmt.Errorf("chaos: torn WAL tail injected at %s but recovery discarded nothing", n.id)
	}
	n.tornPending = false
	if n.snapEvery > 0 && st.ReplayedEnvelopes > n.snapEvery {
		return fmt.Errorf("chaos: recovery of %s replayed %d envelopes against a snapshot cadence of %d — snapshot age does not bound recovery",
			n.id, st.ReplayedEnvelopes, n.snapEvery)
	}
	got, err := marshalState(fresh)
	if err != nil {
		return err
	}
	if !bytes.Equal(got, n.preCrash) {
		return fmt.Errorf("chaos: recovery of %s diverged from the crashed engine's final state (%d vs %d snapshot bytes)",
			n.id, len(got), len(n.preCrash))
	}
	n.eng = fresh
	n.de = de
	n.delsSince = 0
	return nil
}

// closeDurable releases the backend at the end of a schedule, returning
// its latched I/O error, if any.
func (n *node) closeDurable() error {
	if n.de == nil {
		return nil
	}
	if n.down {
		return nil // crashed at quiescence; already closed
	}
	err := n.de.Err()
	n.de.Close()
	return err
}
