package chaos

import (
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"time"

	"flexcast/amcast"
	"flexcast/internal/sim"
	"flexcast/internal/telemetry"
	"flexcast/internal/trace"
)

// ScheduleResult is the outcome of one explored schedule.
type ScheduleResult struct {
	// Seed reproduces the schedule exactly via RunSchedule.
	Seed int64
	// Multicasts and Deliveries count the workload.
	Multicasts int
	Deliveries int
	// FastReads counts the local-read fast-path transactions issued
	// (execute-mode deployments with FastRead instrumentation).
	FastReads int
	// LeaseRefusals counts fast reads a follower replica refused for
	// want of a valid lease (its grantor crashed or the lease lapsed) —
	// correct, audited behavior, kept visible because a schedule that
	// never refuses has not exercised the lease gate.
	LeaseRefusals int
	// Events is the number of simulator events executed.
	Events uint64
	// Faults counts the injected faults.
	Faults FaultStats
	// Err is the first invariant violation (nil for a clean schedule).
	Err error
	// FaultTrace is the schedule's fault log, kept for failure reports.
	FaultTrace []string
	// Stages is the schedule's sim-time lifecycle decomposition (nil
	// when Options.TraceSample disabled tracing or nothing completed);
	// its durations are simulated nanoseconds. Deterministic per seed.
	Stages *telemetry.StagesReport
}

// Report aggregates one exploration run.
type Report struct {
	// Deployment is the protocol label.
	Deployment string
	// Schedules is the number of schedules explored.
	Schedules int
	// Multicasts, Deliveries, FastReads, LeaseRefusals and Events
	// aggregate the workload.
	Multicasts    int
	Deliveries    int
	FastReads     int
	LeaseRefusals int
	Events        uint64
	// Faults aggregates the injected faults.
	Faults FaultStats
	// Violations holds every schedule that failed a safety check.
	Violations []ScheduleResult
	// Tracer aggregates every schedule's lifecycle tracer and Stages is
	// its serialized decomposition (submit → delivery → completion, in
	// simulated nanoseconds); both nil when tracing is disabled.
	Tracer *telemetry.Tracer
	Stages *telemetry.StagesReport
	// minimality records whether the genuineness audit ran (Print).
	minimality bool
	// bugFlip, closedLoop and messages echo the options so the printed
	// reproduce command includes every flag that shaped the schedule.
	bugFlip    int
	closedLoop bool
	messages   int
}

// Failed reports whether any schedule violated an invariant.
func (r *Report) Failed() bool { return len(r.Violations) > 0 }

// Print renders the report; violations come with their seed and fault
// trace so they can be replayed.
func (r *Report) Print(w io.Writer) {
	fmt.Fprintf(w, "chaos %-12s  schedules=%d multicasts=%d deliveries=%d fast-reads=%d lease-refusals=%d events=%d\n",
		r.Deployment, r.Schedules, r.Multicasts, r.Deliveries, r.FastReads, r.LeaseRefusals, r.Events)
	fmt.Fprintf(w, "  faults: retransmits=%d duplicates=%d partition-hits=%d crashes=%d parked=%d torn-tails=%d\n",
		r.Faults.Retransmits, r.Faults.Duplicates, r.Faults.PartitionHits, r.Faults.Crashes, r.Faults.Parked, r.Faults.TornTails)
	if st := r.Stages; st != nil {
		fmt.Fprintf(w, "  stages (1 in %d sampled, %d records, virtual time): e2e p50 %v p99 %v\n",
			st.SampleEvery, st.Records, time.Duration(st.E2E.P50), time.Duration(st.E2E.P99))
		for _, sg := range st.Stages {
			fmt.Fprintf(w, "    %-10s p50 %10v  p99 %10v  max %10v\n",
				sg.Stage, time.Duration(sg.P50), time.Duration(sg.P99), time.Duration(sg.Max))
		}
	}
	if !r.Failed() {
		fmt.Fprintf(w, "  invariants: OK (acyclic order, agreement, integrity, prefix order%s)\n",
			map[bool]string{true: ", minimality"}[r.minimality])
		return
	}
	fmt.Fprintf(w, "  INVARIANT VIOLATIONS: %d\n", len(r.Violations))
	for _, v := range r.Violations {
		fmt.Fprintf(w, "  seed %d: %v\n", v.Seed, v.Err)
		flags := ""
		if r.bugFlip > 0 {
			flags += fmt.Sprintf(" -chaos-bug %d", r.bugFlip)
		}
		if r.closedLoop {
			flags += " -closed-loop"
		}
		if r.messages > 0 {
			flags += fmt.Sprintf(" -messages %d", r.messages)
		}
		fmt.Fprintf(w, "    reproduce: flexbench -mode chaos -protocol %s -repro-seed %d%s\n", r.Deployment, v.Seed, flags)
		for _, line := range v.FaultTrace {
			fmt.Fprintf(w, "    %s\n", line)
		}
	}
}

// Explore runs opt.Schedules seeded schedules of the deployment and
// aggregates the results. A violation does not stop exploration: every
// failing seed is collected so the report is a complete picture.
func Explore(d Deployment, opt Options) (*Report, error) {
	if err := d.validate(); err != nil {
		return nil, err
	}
	opt.fill()
	rep := &Report{Deployment: d.Name, Schedules: opt.Schedules, minimality: d.Minimality,
		bugFlip: opt.BugFlipEvery, closedLoop: opt.ClosedLoop, messages: opt.Messages}
	for i := 0; i < opt.Schedules; i++ {
		res, tracer, err := runScheduleTraced(d, opt, ScheduleSeed(opt.Seed, i))
		if err != nil {
			return nil, err
		}
		rep.Multicasts += res.Multicasts
		rep.Deliveries += res.Deliveries
		rep.FastReads += res.FastReads
		rep.LeaseRefusals += res.LeaseRefusals
		rep.Events += res.Events
		rep.Faults.Add(res.Faults)
		if tracer != nil {
			if rep.Tracer == nil {
				rep.Tracer = telemetry.NewTracer(tracer.SampleEvery(), nil)
			}
			rep.Tracer.Merge(tracer)
		}
		if res.Err != nil {
			rep.Violations = append(rep.Violations, *res)
		}
	}
	rep.Stages = rep.Tracer.Report()
	return rep, nil
}

// readIssuer tracks one client's session barrier (reply sequence
// numbers plus piggybacked watermarks) and issues seeded fast-path
// transactions through the deployment's FastRead instrumentation —
// each read at the client's own barrier, so read-your-writes is
// exercised under the full fault model, across whichever replica the
// instrumentation routes the read to.
type readIssuer struct {
	rng    *rand.Rand
	prob   float64
	read   func(rng *rand.Rand, g amcast.GroupID, barrier uint64, now sim.Time) (bool, error)
	now    func() sim.Time
	prefix amcast.PrefixTracker
	res    *ScheduleResult
	fail   func(err error)
}

// newReadIssuer returns nil when the deployment has no fast-read hook
// or reads are disabled.
func newReadIssuer(instr *Instrumentation, opt Options, s *sim.Simulator, seed int64, client int, res *ScheduleResult, fail func(error)) *readIssuer {
	if instr == nil || instr.FastRead == nil || opt.FastReadProb <= 0 {
		return nil
	}
	return &readIssuer{
		rng:    rand.New(rand.NewSource(ScheduleSeed(seed, 5000+client))),
		prob:   opt.FastReadProb,
		read:   instr.FastRead,
		now:    s.Now,
		prefix: make(amcast.PrefixTracker),
		res:    res,
		fail:   fail,
	}
}

// onReply folds one reply into the session barrier and, with the
// configured probability, issues a fast-path read at the replying
// group's barrier. Lease refusals are counted, never failed: a
// follower that refuses after losing its grantor is behaving exactly
// as specified.
func (ri *readIssuer) onReply(env amcast.Envelope) {
	if ri == nil || env.Kind != amcast.KindReply {
		return
	}
	ri.prefix.Observe(env)
	if ri.rng.Float64() >= ri.prob {
		return
	}
	g := env.From.Group()
	ri.res.FastReads++
	served, err := ri.read(ri.rng, g, ri.prefix.Prefix(g), ri.now())
	if err != nil {
		ri.fail(fmt.Errorf("fast read at group %d: %w", g, err))
		return
	}
	if !served {
		ri.res.LeaseRefusals++
	}
}

// loopClient is one closed-loop workload source: it issues its next
// multicast as soon as the previous one completed at every destination.
// Duplicate replies (fault injection) are folded by the pending set.
type loopClient struct {
	s     *sim.Simulator
	net   *sim.Network
	route func(m amcast.Message) []amcast.NodeID
	rec   *trace.Recorder
	res   *ScheduleResult
	id    amcast.NodeID
	msgs  []amcast.Message
	next  int
	cur   map[amcast.GroupID]bool
	think sim.Time
	reads *readIssuer
	// tracer stamps sampled multicasts (nil on the flush client, whose
	// GC multicasts are not client requests).
	tracer *telemetry.Tracer
}

func (c *loopClient) issue() {
	if c.next >= len(c.msgs) {
		return
	}
	m := c.msgs[c.next]
	c.next++
	c.cur = make(map[amcast.GroupID]bool, len(m.Dst))
	for _, g := range m.Dst {
		c.cur[g] = true
	}
	c.rec.OnMulticast(m)
	c.res.Multicasts++
	c.tracer.Begin(m.ID)
	for _, to := range c.route(m) {
		c.net.Send(c.id, to, amcast.Envelope{Kind: amcast.KindRequest, From: c.id, Msg: m})
	}
}

// HandleEnvelope implements sim.Handler: collect replies, issue the next
// multicast once the current one completed everywhere. Every reply also
// feeds the fast-read issuer (stale and duplicate replies included —
// they still witness a delivered prefix).
func (c *loopClient) HandleEnvelope(env amcast.Envelope) {
	c.reads.onReply(env)
	if env.Kind != amcast.KindReply || c.cur == nil || !c.cur[env.From.Group()] {
		return
	}
	// Stale replies for earlier messages cannot reach here: cur only
	// tracks the in-flight message, and ids are per-client unique.
	if env.Msg.ID != c.msgs[c.next-1].ID {
		return
	}
	delete(c.cur, env.From.Group())
	if len(c.cur) == 0 {
		c.tracer.Finish(env.Msg.ID)
		c.s.Schedule(c.think, c.issue)
	}
}

// RunSchedule runs one seeded schedule: build a fresh deployment on the
// simulator, inject the seed's faults and workload, run to quiescence,
// and check every safety property. The returned error is reserved for
// deployment problems; invariant violations land in ScheduleResult.Err.
func RunSchedule(d Deployment, opt Options, seed int64) (*ScheduleResult, error) {
	res, _, err := runScheduleTraced(d, opt, seed)
	return res, err
}

// runScheduleTraced is RunSchedule plus the schedule's live tracer, so
// Explore can merge histograms across schedules. The tracer stays off
// ScheduleResult because it holds a clock closure, which would poison
// reflect.DeepEqual-based determinism comparisons.
func runScheduleTraced(d Deployment, opt Options, seed int64) (*ScheduleResult, *telemetry.Tracer, error) {
	if err := d.validate(); err != nil {
		return nil, nil, err
	}
	opt.fill()
	rng := rand.New(rand.NewSource(seed))
	s := sim.New()
	rec := trace.NewRecorder()
	res := &ScheduleResult{Seed: seed}
	// The lifecycle tracer runs on the simulator clock, scaled to the
	// tracer's nanosecond unit (sim.Time is virtual microseconds).
	sample := opt.TraceSample
	if sample < 0 {
		sample = 0
	}
	tracer := telemetry.NewTracer(sample, func() uint64 { return uint64(s.Now()) * 1000 })
	fail := func(err error) {
		if res.Err == nil {
			res.Err = err
		}
	}

	// Random but fixed per-link latencies in [100µs, 20ms): chaos
	// explores latency topologies beyond the WAN matrix — unless a
	// fixed latency model (e.g. the WAN matrix itself) is installed.
	latency := opt.Latency
	if latency == nil {
		lat := make(map[[2]amcast.NodeID]sim.Time)
		latency = func(from, to amcast.NodeID) sim.Time {
			key := [2]amcast.NodeID{from, to}
			l, ok := lat[key]
			if !ok {
				l = sim.Time(100 + rng.Int63n(19_900))
				lat[key] = l
			}
			return l
		}
	}

	// Durable mode: every node persists through the real backend in a
	// per-schedule temporary directory, removed when the schedule ends.
	var durDir string
	if opt.Durable {
		if d.Decode == nil {
			return nil, nil, fmt.Errorf("chaos: Options.Durable requires Deployment.Decode")
		}
		if d.Instrument != nil {
			return nil, nil, fmt.Errorf("chaos: Options.Durable does not compose with Instrument deployments (observers would bind to pre-crash engines)")
		}
		dir, err := os.MkdirTemp("", "chaos-durable-")
		if err != nil {
			return nil, nil, err
		}
		durDir = dir
		defer os.RemoveAll(durDir)
	}

	inj := newInjector(opt, d.Groups, rng, s)
	netOpts := []sim.NetworkOption{
		sim.WithFaults(inj.Fault),
		sim.WithSendHook(func(from, to amcast.NodeID, env amcast.Envelope) {
			rec.OnSend(from, to, env)
		}),
	}
	if opt.Observer != nil {
		netOpts = append(netOpts, sim.WithHandleHook(opt.Observer))
	}
	net := sim.NewNetwork(s, latency, netOpts...)

	nodes := make(map[amcast.GroupID]*node, len(d.Groups))
	engines := make(map[amcast.GroupID]amcast.SnapshotEngine, len(d.Groups))
	for _, g := range d.Groups {
		eng, err := d.Factory(g)
		if err != nil {
			return nil, nil, fmt.Errorf("chaos: build engine for group %d: %w", g, err)
		}
		n := newNode(amcast.GroupNode(g), eng, net, opt.SnapshotEvery)
		n.onDeliver = func(del amcast.Delivery) error {
			res.Deliveries++
			tracer.Stamp(del.Msg.ID, telemetry.StageDeliver)
			return rec.OnDeliver(del)
		}
		n.fail = fail
		n.bugEvery = opt.BugFlipEvery
		if opt.Durable {
			g := g
			err := n.enableDurable(filepath.Join(durDir, fmt.Sprintf("group-%d", g)),
				func() (amcast.SnapshotEngine, error) { return d.Factory(g) }, d.Decode)
			if err != nil {
				return nil, nil, fmt.Errorf("chaos: durable backend for group %d: %w", g, err)
			}
		}
		nodes[g] = n
		engines[g] = eng
		net.Register(amcast.GroupNode(g), n)
	}
	var instr *Instrumentation
	if d.Instrument != nil {
		instr = d.Instrument(engines, s.Now)
	}

	// Crash/recovery schedule: crash the server and park its traffic;
	// at the window's end rebuild the engine from stable storage, then
	// release the parked traffic.
	for _, w := range inj.crashes {
		w := w
		gnode := amcast.GroupNode(w.group)
		s.ScheduleAt(w.start, func() {
			n := nodes[w.group]
			n.Crash()
			if w.torn {
				if err := n.TearTail(); err != nil {
					fail(err)
				} else {
					inj.stats.TornTails++
				}
			}
			net.CrashNode(gnode)
			inj.stats.Crashes++
		})
		s.ScheduleAt(w.end, func() {
			inj.stats.Parked += net.Parked(gnode)
			if err := nodes[w.group].Recover(); err != nil {
				fail(err)
			}
			net.RestartNode(gnode)
		})
	}

	// The flush/garbage-collection client (paper §4.3): flush multicasts
	// to every group on a fixed period, so schedules exercise history
	// pruning concurrently with faults. Closed-loop schedules run as long
	// as their clients keep completing, so the flush client then chains
	// closed-loop too (one flush per completed flush plus think time),
	// keeping GC active across the whole denser run.
	if opt.FlushEvery > 0 {
		fid := amcast.ClientNode(opt.Clients)
		allGroups := amcast.NormalizeDst(append([]amcast.GroupID(nil), d.Groups...))
		if opt.ClosedLoop {
			n := opt.Messages
			if n < 4 {
				n = 4
			}
			msgs := make([]amcast.Message, n)
			for i := range msgs {
				msgs[i] = amcast.Message{
					ID:     amcast.NewMsgID(opt.Clients, uint64(i+1)),
					Sender: fid,
					Dst:    allGroups,
					Flags:  amcast.FlagFlush,
				}
			}
			lc := &loopClient{
				s: s, net: net, route: d.Route, rec: rec, res: res,
				id: fid, msgs: msgs, think: opt.FlushEvery,
			}
			net.Register(fid, lc)
			s.ScheduleAt(opt.FlushEvery, lc.issue)
		} else {
			net.Register(fid, sim.HandlerFunc(func(env amcast.Envelope) {}))
			seq := uint64(0)
			for at := opt.FlushEvery; at <= opt.InjectWindow; at += opt.FlushEvery {
				seq++
				m := amcast.Message{
					ID:     amcast.NewMsgID(opt.Clients, seq),
					Sender: fid,
					Dst:    allGroups,
					Flags:  amcast.FlagFlush,
				}
				rec.OnMulticast(m)
				res.Multicasts++
				at := at
				s.ScheduleAt(at, func() {
					for _, to := range d.Route(m) {
						net.Send(fid, to, amcast.Envelope{Kind: amcast.KindRequest, From: fid, Msg: m})
					}
				})
			}
		}
	}

	// Workload: every client's multicast sequence is drawn up front from
	// the schedule seed (so open- and closed-loop runs with the same seed
	// share the workload); open loop schedules them at random times,
	// closed loop chains each issue to the previous completion.
	maxDst := opt.MaxDst
	if maxDst == 0 || maxDst > len(d.Groups) {
		maxDst = len(d.Groups)
	}
	for c := 0; c < opt.Clients; c++ {
		cid := amcast.ClientNode(c)
		var nextTx func(i int) ([]amcast.GroupID, []byte)
		if opt.NextTx != nil {
			nextTx = opt.NextTx(seed, c)
		}
		msgs := make([]amcast.Message, opt.Messages)
		for i := range msgs {
			var dst []amcast.GroupID
			var payload []byte
			if nextTx != nil {
				dst, payload = nextTx(i)
			} else {
				nDst := 1 + rng.Intn(maxDst)
				perm := rng.Perm(len(d.Groups))
				dst = make([]amcast.GroupID, 0, nDst)
				for _, p := range perm[:nDst] {
					dst = append(dst, d.Groups[p])
				}
				dst = amcast.NormalizeDst(dst)
				payload = []byte(fmt.Sprintf("chaos-%d-%d", c, i))
			}
			msgs[i] = amcast.Message{
				ID:      amcast.NewMsgID(c, uint64(i+1)),
				Sender:  cid,
				Dst:     dst,
				Payload: payload,
			}
		}
		if opt.ClosedLoop {
			lc := &loopClient{
				s: s, net: net, route: d.Route, rec: rec, res: res,
				id: cid, msgs: msgs, think: opt.ThinkTime,
				reads:  newReadIssuer(instr, opt, s, seed, c, res, fail),
				tracer: tracer,
			}
			net.Register(cid, lc)
			start := sim.Time(rng.Int63n(int64(opt.InjectWindow)/8 + 1))
			s.ScheduleAt(start, lc.issue)
			continue
		}
		ri := newReadIssuer(instr, opt, s, seed, c, res, fail)
		// Open-loop completion tracking for the tracer: a sampled
		// multicast finishes when every destination has replied
		// (duplicate replies fold into the set).
		pending := make(map[amcast.MsgID]map[amcast.GroupID]bool)
		net.Register(cid, sim.HandlerFunc(func(env amcast.Envelope) {
			ri.onReply(env)
			if env.Kind != amcast.KindReply {
				return
			}
			if want, ok := pending[env.Msg.ID]; ok {
				delete(want, env.From.Group())
				if len(want) == 0 {
					delete(pending, env.Msg.ID)
					tracer.Finish(env.Msg.ID)
				}
			}
		}))
		for i := range msgs {
			m := msgs[i]
			rec.OnMulticast(m)
			res.Multicasts++
			at := sim.Time(rng.Int63n(int64(opt.InjectWindow)))
			s.ScheduleAt(at, func() {
				if tracer.Sampled(m.ID) {
					want := make(map[amcast.GroupID]bool, len(m.Dst))
					for _, g := range m.Dst {
						want[g] = true
					}
					pending[m.ID] = want
					tracer.Begin(m.ID)
				}
				for _, to := range d.Route(m) {
					net.Send(cid, to, amcast.Envelope{Kind: amcast.KindRequest, From: cid, Msg: m})
				}
			})
		}
	}

	s.Run()
	res.Events = s.Steps()
	res.Faults = inj.stats
	res.FaultTrace = inj.FaultTrace()

	// Durable teardown: surface any latched backend I/O error, then
	// release the file descriptors before the directory is removed.
	for _, g := range d.Groups {
		if err := nodes[g].closeDurable(); err != nil {
			fail(fmt.Errorf("group %d durable backend: %w", g, err))
		}
	}

	// Safety checks. res.Err may already hold an at-most-once violation
	// or a recovery divergence; the trace checkers add the global
	// properties, and engines exposing an internal acyclicity check (the
	// FlexCast history DAG) are audited too. The audit runs against each
	// node's current engine — durable recovery replaces engines, so the
	// build-time map can be stale.
	if res.Err == nil {
		if err := rec.CheckAll(d.Minimality); err != nil {
			res.Err = err
		}
	}
	if res.Err == nil {
		for _, g := range d.Groups {
			if c, ok := nodes[g].eng.(interface{ CheckHistoryAcyclic() error }); ok {
				if err := c.CheckHistoryAcyclic(); err != nil {
					res.Err = fmt.Errorf("group %d: %w", g, err)
					break
				}
			}
		}
	}
	// Execution-level audits (store serializability including fast
	// reads, cross-shard invariants, replica digests) on execute-mode
	// deployments.
	if res.Err == nil && instr != nil && instr.PostCheck != nil {
		res.Err = instr.PostCheck()
	}
	res.Stages = tracer.Report()
	return res, tracer, nil
}
