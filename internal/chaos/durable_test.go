package chaos_test

import (
	"reflect"
	"strings"
	"testing"

	"flexcast/internal/chaos"
)

// TestDurableKillRestartSchedules runs crash/recovery exploration over
// the real durable backend: every node logs its inputs to an on-disk
// WAL with periodic snapshot rotation, every crash abandons the files
// exactly as kill -9 would (half of them tearing the WAL tail
// mid-record), and every recovery rebuilds a completely fresh engine
// from the directory. The per-recovery audits — torn tail discarded,
// replay bounded by the snapshot cadence, recovered state byte-equal to
// the crashed engine's final state — plus the full trace checkers must
// all hold on every schedule.
func TestDurableKillRestartSchedules(t *testing.T) {
	deps := []chaos.Deployment{flexDeployment(groups5), skeenDeployment(groups5), treeDeployment()}
	for _, d := range deps {
		d := d
		t.Run(d.Name, func(t *testing.T) {
			rep, err := chaos.Explore(d, chaos.Options{
				Seed:      3,
				Schedules: 10,
				Durable:   true,
				Crashes:   3,
				// Long downtimes so recovered nodes face real parked
				// backlogs, not just quiet restarts.
				DowntimeMean: 600_000,
			})
			if err != nil {
				t.Fatal(err)
			}
			if rep.Failed() {
				var sb strings.Builder
				rep.Print(&sb)
				t.Fatalf("invariant violations over the durable backend:\n%s", sb.String())
			}
			if rep.Faults.Crashes == 0 {
				t.Fatalf("no crash ever executed: %+v", rep.Faults)
			}
			if rep.Faults.TornTails == 0 {
				t.Fatalf("no crash tore the WAL tail (injection ineffective): %+v", rep.Faults)
			}
			if rep.Faults.TornTails >= rep.Faults.Crashes {
				t.Fatalf("every crash tore the tail — both recovery shapes must be explored: %+v", rep.Faults)
			}
			if rep.Faults.Parked == 0 {
				t.Fatalf("no envelope ever hit a crashed server: %+v", rep.Faults)
			}
		})
	}
}

// TestDurableScheduleDeterminism extends the reproducibility contract to
// durable mode: real file I/O, torn-tail injection and disk recovery
// must not perturb the schedule — the same seed yields a bit-identical
// result.
func TestDurableScheduleDeterminism(t *testing.T) {
	d := flexDeployment(groups5)
	opt := chaos.Options{Seed: 42, Durable: true}
	a, err := chaos.RunSchedule(d, opt, 123456789)
	if err != nil {
		t.Fatal(err)
	}
	b, err := chaos.RunSchedule(d, opt, 123456789)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same durable seed diverged:\n%+v\n%+v", a, b)
	}
}

// TestDurableRequiresDecode pins the configuration contract: durable
// mode without a snapshot decoder is a deployment error, not a panic
// deep inside recovery.
func TestDurableRequiresDecode(t *testing.T) {
	d := flexDeployment(groups5)
	d.Decode = nil
	if _, err := chaos.RunSchedule(d, chaos.Options{Durable: true}, 1); err == nil {
		t.Fatal("durable deployment without Decode accepted")
	}
}
