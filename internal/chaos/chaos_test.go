package chaos_test

import (
	"reflect"
	"strings"
	"testing"

	"flexcast/amcast"
	"flexcast/internal/chaos"
	"flexcast/internal/core"
	"flexcast/internal/hierarchical"
	"flexcast/internal/overlay"
	"flexcast/internal/skeen"
)

func flexDeployment(groups []amcast.GroupID) chaos.Deployment {
	ov := overlay.MustCDAG(groups)
	return chaos.Deployment{
		Name:   "FlexCast",
		Groups: groups,
		Factory: func(g amcast.GroupID) (amcast.SnapshotEngine, error) {
			return core.New(core.Config{Group: g, Overlay: ov})
		},
		Route: func(m amcast.Message) []amcast.NodeID {
			return []amcast.NodeID{amcast.GroupNode(ov.Lca(m.Dst))}
		},
		Minimality: true,
		Decode:     core.UnmarshalSnapshot,
	}
}

func skeenDeployment(groups []amcast.GroupID) chaos.Deployment {
	return chaos.Deployment{
		Name:   "Distributed",
		Groups: groups,
		Factory: func(g amcast.GroupID) (amcast.SnapshotEngine, error) {
			return skeen.New(skeen.Config{Group: g, Groups: groups})
		},
		Route: func(m amcast.Message) []amcast.NodeID {
			nodes := make([]amcast.NodeID, len(m.Dst))
			for i, g := range m.Dst {
				nodes[i] = amcast.GroupNode(g)
			}
			return nodes
		},
		Minimality: true,
		Decode:     skeen.UnmarshalSnapshot,
	}
}

func treeDeployment() chaos.Deployment {
	tree := overlay.MustTree(1, map[amcast.GroupID][]amcast.GroupID{
		1: {2, 3},
		2: {4, 5},
	})
	return chaos.Deployment{
		Name:   "Hierarchical",
		Groups: tree.Groups(),
		Factory: func(g amcast.GroupID) (amcast.SnapshotEngine, error) {
			return hierarchical.New(hierarchical.Config{Group: g, Tree: tree})
		},
		Route: func(m amcast.Message) []amcast.NodeID {
			return []amcast.NodeID{amcast.GroupNode(tree.Lca(m.Dst))}
		},
		Minimality: false,
		Decode:     hierarchical.UnmarshalSnapshot,
	}
}

var groups5 = []amcast.GroupID{1, 2, 3, 4, 5}

// TestExploreAllProtocolsClean is the heart of the subsystem's promise:
// under retransmission delays, duplication, jitter, transient partitions
// and crash/recovery, every protocol upholds all safety properties on
// every explored schedule — and the schedules really do contain faults.
func TestExploreAllProtocolsClean(t *testing.T) {
	deps := []chaos.Deployment{flexDeployment(groups5), skeenDeployment(groups5), treeDeployment()}
	for _, d := range deps {
		d := d
		t.Run(d.Name, func(t *testing.T) {
			rep, err := chaos.Explore(d, chaos.Options{Seed: 1, Schedules: 30})
			if err != nil {
				t.Fatal(err)
			}
			if rep.Failed() {
				var sb strings.Builder
				rep.Print(&sb)
				t.Fatalf("invariant violations:\n%s", sb.String())
			}
			if rep.Faults.Crashes == 0 || rep.Faults.Retransmits == 0 || rep.Faults.Duplicates == 0 {
				t.Fatalf("exploration injected no faults: %+v", rep.Faults)
			}
			if rep.Faults.Parked == 0 {
				t.Fatalf("no envelope ever hit a crashed server (crash windows ineffective): %+v", rep.Faults)
			}
			if rep.Deliveries == 0 || rep.Multicasts == 0 {
				t.Fatalf("empty workload: %+v", rep)
			}
		})
	}
}

// TestScheduleDeterminism verifies the reproducibility contract: the same
// seed yields a bit-identical schedule result.
func TestScheduleDeterminism(t *testing.T) {
	d := flexDeployment(groups5)
	opt := chaos.Options{Seed: 42}
	a, err := chaos.RunSchedule(d, opt, 123456789)
	if err != nil {
		t.Fatal(err)
	}
	b, err := chaos.RunSchedule(d, opt, 123456789)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed diverged:\n%+v\n%+v", a, b)
	}
	c, err := chaos.RunSchedule(d, opt, 987654321)
	if err != nil {
		t.Fatal(err)
	}
	if c.Events == a.Events && reflect.DeepEqual(c.Faults, a.Faults) {
		t.Fatalf("different seeds produced identical runs (seed unused?)")
	}
}

// TestInjectedOrderingBugCaught validates the checker pipeline end to
// end: with the test-only ordering bug enabled, exploration must report
// a violation, and the violating seed must reproduce it exactly.
func TestInjectedOrderingBugCaught(t *testing.T) {
	d := flexDeployment(groups5)
	opt := chaos.Options{Seed: 7, Schedules: 20, BugFlipEvery: 1}
	rep, err := chaos.Explore(d, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Failed() {
		t.Fatal("ordering bug injected but no schedule reported a violation")
	}
	v := rep.Violations[0]
	if v.Err == nil || v.Seed == 0 {
		t.Fatalf("violation lacks error or seed: %+v", v)
	}
	res, err := chaos.RunSchedule(d, opt, v.Seed)
	if err != nil {
		t.Fatal(err)
	}
	if res.Err == nil || res.Err.Error() != v.Err.Error() {
		t.Fatalf("seed %d did not reproduce the violation: got %v, want %v", v.Seed, res.Err, v.Err)
	}
	// The bug lives behind the guard: the same seeds are clean without it.
	opt.BugFlipEvery = 0
	clean, err := chaos.Explore(d, opt)
	if err != nil {
		t.Fatal(err)
	}
	if clean.Failed() {
		t.Fatalf("violations without the bug hook: %v", clean.Violations[0].Err)
	}
}

// TestRecoveryExercisesSnapshots makes sure crash windows actually force
// snapshot-plus-WAL recoveries that the checker then validates — i.e.
// the zero-violation result of the clean test is meaningful.
func TestRecoveryExercisesSnapshots(t *testing.T) {
	d := flexDeployment(groups5)
	rep, err := chaos.Explore(d, chaos.Options{
		Seed:      11,
		Schedules: 10,
		Crashes:   3,
		// Long downtimes with a busy window: plenty of parked traffic.
		DowntimeMean: 600_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed() {
		t.Fatalf("violations under heavy crashing: %v", rep.Violations[0].Err)
	}
	if rep.Faults.Crashes != 30 {
		t.Fatalf("crashes = %d, want 3 per schedule × 10", rep.Faults.Crashes)
	}
	if rep.Faults.Parked == 0 {
		t.Fatal("heavy crashing parked no traffic")
	}
}

// TestRegressionSeeds pins schedules that exposed a genuine FlexCast
// ordering bug in the original engine: a destination accepted a notified
// group's flush ack that predated a later notifier's dependencies,
// allowing a global delivery cycle (fixed by pair-wise notification
// tracking; scripted replay in internal/core TestStaleNotifAckCycle).
// These exact seeds produced acyclic-order and agreement violations.
func TestRegressionSeeds(t *testing.T) {
	groups6 := []amcast.GroupID{1, 2, 3, 4, 5, 6}
	groups12 := make([]amcast.GroupID, 12)
	for i := range groups12 {
		groups12[i] = amcast.GroupID(i + 1)
	}
	cases := []struct {
		name string
		dep  chaos.Deployment
		opt  chaos.Options
		seed int64
	}{
		{"drops-6g", flexDeployment(groups6),
			chaos.Options{Seed: 1, Clients: 3, Messages: 10, DropProb: 0.2, DupProb: -1, Partitions: -1, Crashes: -1},
			4526540616823276447},
		{"all-12g", flexDeployment(groups12), chaos.Options{Seed: 1}, -3258883285024894585},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			res, err := chaos.RunSchedule(c.dep, c.opt, c.seed)
			if err != nil {
				t.Fatal(err)
			}
			if res.Err != nil {
				t.Fatalf("regression seed %d violates invariants again: %v", c.seed, res.Err)
			}
		})
	}
}

// TestExploreValidation covers deployment validation.
func TestExploreValidation(t *testing.T) {
	if _, err := chaos.Explore(chaos.Deployment{}, chaos.Options{}); err == nil {
		t.Fatal("empty deployment accepted")
	}
	if _, err := chaos.RunSchedule(chaos.Deployment{Name: "x"}, chaos.Options{}, 1); err == nil {
		t.Fatal("deployment without groups accepted")
	}
}
