package chaos_test

import (
	"fmt"
	"os"
	"strconv"
	"testing"

	"flexcast/internal/chaos"
	"flexcast/internal/harness"
)

// TestHuntFlushGC hunts for staircase-ring regressions (the formerly
// open acyclic-order hole, DESIGN.md §4 deviation 8): dense, fault-free
// closed-loop schedules with aggressive flushing on the profile that
// mirrors the measurement harness — the WAN latency matrix plus gTPC-C
// destination locality (harness.ApplyWANProfile), which the
// random-latency, uniform-destination hunts cannot emulate and which
// the historical repro (flexbench -experiment fig5 -scale 0.02
// -verify) depended on. Enabled via CHAOS_HUNT=<schedules> (the
// scheduled CI ring-hunt job runs it nightly); CHAOS_HUNT_RANDOM=1
// falls back to the random environment. Any violation FAILS the test;
// each failing seed is printed for deterministic replay.
func TestHuntFlushGC(t *testing.T) {
	n, _ := strconv.Atoi(os.Getenv("CHAOS_HUNT"))
	if n == 0 {
		t.Skip("set CHAOS_HUNT=<schedules> to hunt")
	}
	opts := chaos.Options{
		Seed:      7,
		Schedules: n,
		Clients:   6,
		Messages:  400,
		MaxDst:    3,
		// Aggressive GC, no faults: the known repro (flexbench
		// -experiment fig5 -scale 0.02 -verify) is fault-free.
		FlushEvery:    100_000,
		ClosedLoop:    true,
		DropProb:      -1,
		DupProb:       -1,
		JitterMax:     -1,
		Partitions:    -1,
		Crashes:       -1,
		SnapshotEvery: 1 << 30,
	}
	if os.Getenv("CHAOS_HUNT_RANDOM") == "" {
		// The fig5 harness runs the global-only latency workloads at high
		// locality; 0.95 is its middle setting.
		harness.ApplyWANProfile(&opts, 0.95, false)
	}
	rep, err := harness.RunChaos(harness.ChaosConfig{
		Protocol: harness.FlexCast,
		Options:  opts,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range rep.Violations {
		t.Errorf("VIOLATION seed %d: %v", v.Seed, v.Err)
	}
	fmt.Printf("hunted %d schedules, %d multicasts, %d violations\n",
		rep.Schedules, rep.Multicasts, len(rep.Violations))
}
