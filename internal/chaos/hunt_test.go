package chaos_test

import (
	"fmt"
	"os"
	"strconv"
	"testing"

	"flexcast/internal/chaos"
	"flexcast/internal/harness"
)

// TestHuntFlushGC is a manual hunting harness for the known flush-GC
// acyclic-order bug (ROADMAP): dense, fault-free closed-loop schedules
// with aggressive flushing. Enabled via CHAOS_HUNT=<schedules>.
func TestHuntFlushGC(t *testing.T) {
	n, _ := strconv.Atoi(os.Getenv("CHAOS_HUNT"))
	if n == 0 {
		t.Skip("set CHAOS_HUNT=<schedules> to hunt")
	}
	rep, err := harness.RunChaos(harness.ChaosConfig{
		Protocol: harness.FlexCast,
		Options: chaos.Options{
			Seed:      7,
			Schedules: n,
			Clients:   6,
			Messages:  400,
			MaxDst:    3,
			// Aggressive GC, no faults: the known repro (flexbench
			// -experiment fig5 -scale 0.02 -verify) is fault-free.
			FlushEvery:    100_000,
			ClosedLoop:    true,
			DropProb:      -1,
			DupProb:       -1,
			JitterMax:     -1,
			Partitions:    -1,
			Crashes:       -1,
			SnapshotEvery: 1 << 30,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range rep.Violations {
		fmt.Printf("VIOLATION seed %d: %v\n", v.Seed, v.Err)
	}
	fmt.Printf("hunted %d schedules, %d multicasts, %d violations\n",
		rep.Schedules, rep.Multicasts, len(rep.Violations))
}
