package chaos_test

import (
	"testing"

	"flexcast/amcast"
	"flexcast/internal/harness"
	"flexcast/internal/sim"
	"flexcast/internal/trace"
	"flexcast/internal/wan"
)

// fig5Config is the exact configuration of the formerly-open
// acyclic-order repro, flexbench -experiment fig5 -scale 0.02 -seed N
// -verify: the paper's latency setup (FlexCast on O1, 240 closed-loop
// clients with per-destination reply waits, global-only gTPC-C at 90 %
// locality) with the prototype's §4.3 flush cadence and the
// 2-virtual-second floor that -scale 0.02 clamps to.
func fig5Config(seed int64, flushEvery sim.Time) harness.Config {
	return harness.Config{
		Protocol:   harness.FlexCast,
		Overlay:    wan.O1(),
		Locality:   0.90,
		NumClients: 240,
		GlobalOnly: true,
		Duration:   2_000_000,
		TrimFrac:   0.1,
		Seed:       seed,
		FlushEvery: flushEvery,
		Record:     true,
	}
}

// findDeliveryCycle extracts one cycle from the union of the per-group
// delivery chains, as a sequence of message IDs in ≺ order (each
// element delivered before the next at some group, wrapping around).
// Returns nil when the global order is acyclic. Kept as the diagnostic
// for any future regression: a failing run's cycle is printed with the
// destination overlap of each adjacent pair.
func findDeliveryCycle(rec *trace.Recorder) []amcast.MsgID {
	succ := make(map[amcast.MsgID][]amcast.MsgID)
	for _, g := range rec.Groups() {
		seq := rec.Sequence(g)
		for i := 0; i+1 < len(seq); i++ {
			succ[seq[i]] = append(succ[seq[i]], seq[i+1])
		}
	}
	const (
		white = iota
		gray
		black
	)
	color := make(map[amcast.MsgID]int)
	var stack []amcast.MsgID
	var cycle []amcast.MsgID
	var visit func(id amcast.MsgID) bool
	visit = func(id amcast.MsgID) bool {
		color[id] = gray
		stack = append(stack, id)
		for _, s := range succ[id] {
			switch color[s] {
			case gray:
				for i := len(stack) - 1; i >= 0; i-- {
					if stack[i] == s {
						cycle = append([]amcast.MsgID(nil), stack[i:]...)
						return true
					}
				}
			case white:
				if visit(s) {
					return true
				}
			}
		}
		stack = stack[:len(stack)-1]
		color[id] = black
		return false
	}
	for id := range succ {
		if color[id] == white && visit(id) {
			return cycle
		}
	}
	return nil
}

// requireClean asserts a fig5 run upholds every recorded invariant —
// integrity, agreement, pairwise prefix order AND global acyclicity.
// On an acyclicity violation it extracts the delivery cycle for the
// failure message, the shape the pre-fix staircase ring used to take
// (scripted shrink: core.TestFreshRequestRingCycle).
func requireClean(t *testing.T, seed int64, rec *trace.Recorder) {
	t.Helper()
	if err := rec.CheckAll(true); err != nil {
		if ring := findDeliveryCycle(rec); ring != nil {
			t.Fatalf("seed %d: %v\ndelivery cycle (length %d): %v", seed, err, len(ring), ring)
		}
		t.Fatalf("seed %d: %v", seed, err)
	}
}

// TestFig5KnownRingSignature replays the formerly-open repro
// flexbench -experiment fig5 -scale 0.02 -seed 2 -verify. Before the
// re-certification fix (DESIGN.md §4 deviation 8) this seed
// deterministically formed a fresh-request staircase ring: an
// acyclic-order violation invisible to integrity, agreement and
// pairwise prefix order. The NOTIF certification epochs close that
// window, so the exact historical repro must now run fully clean.
func TestFig5KnownRingSignature(t *testing.T) {
	if testing.Short() {
		t.Skip("fig5-scale replay; skipped in -short")
	}
	res, err := harness.Run(fig5Config(2, 250_000))
	if err != nil {
		t.Fatal(err)
	}
	requireClean(t, 2, res.Trace)
}

// TestFig5RingWithoutFlushGC reruns seed 2 with the flush client
// disabled entirely. Pre-fix, the ring still formed without any
// flush/GC traffic — which is what pinned the hole on the base
// NOTIF/flush-ack ordering machinery rather than §4.3 garbage
// collection (the historical "flush-GC bug" label was a
// misattribution). The fix lives in that base machinery, so this
// variant must be clean too.
func TestFig5RingWithoutFlushGC(t *testing.T) {
	if testing.Short() {
		t.Skip("fig5-scale replay; skipped in -short")
	}
	res, err := harness.Run(fig5Config(2, 0))
	if err != nil {
		t.Fatal(err)
	}
	requireClean(t, 2, res.Trace)
}

// TestFig5SeedSweep sweeps seeds 1–32 of the exact fig5 configuration
// and requires every run fully clean. Pre-fix, seeds 2 and 4 of the
// first eight formed the staircase ring — it needs a precise
// coincidence where k ≥ 5 rank-chained two-destination messages are
// each delivered on the lca fast path inside the in-flight window of
// their ring predecessor's MSG, every covering flush ack beats its
// group's inversion, and the duplicate-NOTIF fold suppresses the one
// late re-certification. The widened sweep (4× the pre-fix range)
// guards the fix against timing-sensitive recurrence.
func TestFig5SeedSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("fig5-scale seed sweep; skipped in -short")
	}
	for seed := int64(1); seed <= 32; seed++ {
		res, err := harness.Run(fig5Config(seed, 250_000))
		if err != nil {
			t.Fatal(err)
		}
		requireClean(t, seed, res.Trace)
	}
}
