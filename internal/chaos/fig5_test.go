package chaos_test

import (
	"testing"

	"flexcast/amcast"
	"flexcast/internal/harness"
	"flexcast/internal/sim"
	"flexcast/internal/trace"
	"flexcast/internal/wan"
)

// fig5Config is the exact configuration of the known acyclic-order
// repro, flexbench -experiment fig5 -scale 0.02 -seed N -verify: the
// paper's latency setup (FlexCast on O1, 240 closed-loop clients with
// per-destination reply waits, global-only gTPC-C at 90 % locality)
// with the prototype's §4.3 flush cadence and the 2-virtual-second
// floor that -scale 0.02 clamps to.
func fig5Config(seed int64, flushEvery sim.Time) harness.Config {
	return harness.Config{
		Protocol:   harness.FlexCast,
		Overlay:    wan.O1(),
		Locality:   0.90,
		NumClients: 240,
		GlobalOnly: true,
		Duration:   2_000_000,
		TrimFrac:   0.1,
		Seed:       seed,
		FlushEvery: flushEvery,
		Record:     true,
	}
}

// findDeliveryCycle extracts one cycle from the union of the per-group
// delivery chains, as a sequence of message IDs in ≺ order (each
// element delivered before the next at some group, wrapping around).
// Returns nil when the global order is acyclic.
func findDeliveryCycle(rec *trace.Recorder) []amcast.MsgID {
	succ := make(map[amcast.MsgID][]amcast.MsgID)
	for _, g := range rec.Groups() {
		seq := rec.Sequence(g)
		for i := 0; i+1 < len(seq); i++ {
			succ[seq[i]] = append(succ[seq[i]], seq[i+1])
		}
	}
	const (
		white = iota
		gray
		black
	)
	color := make(map[amcast.MsgID]int)
	var stack []amcast.MsgID
	var cycle []amcast.MsgID
	var visit func(id amcast.MsgID) bool
	visit = func(id amcast.MsgID) bool {
		color[id] = gray
		stack = append(stack, id)
		for _, s := range succ[id] {
			switch color[s] {
			case gray:
				for i := len(stack) - 1; i >= 0; i-- {
					if stack[i] == s {
						cycle = append([]amcast.MsgID(nil), stack[i:]...)
						return true
					}
				}
			case white:
				if visit(s) {
					return true
				}
			}
		}
		stack = stack[:len(stack)-1]
		color[id] = black
		return false
	}
	for id := range succ {
		if color[id] == white && visit(id) {
			return cycle
		}
	}
	return nil
}

// sharedDsts returns the common destination groups of two recorded
// messages.
func sharedDsts(rec *trace.Recorder, a, b amcast.MsgID) []amcast.GroupID {
	ma, _ := rec.Message(a)
	mb, _ := rec.Message(b)
	var out []amcast.GroupID
	for _, g := range ma.Dst {
		if mb.HasDst(g) {
			out = append(out, g)
		}
	}
	return out
}

// requireKnownRing asserts that a failing fig5 run fails with exactly
// the signature of the known fresh-request ring (the scripted shrink is
// core.TestFreshRequestRingCycle): integrity, agreement and — crucially
// — pairwise prefix order all HOLD, yet the global order has a cycle.
// Every cyclically-adjacent pair of ring members must share at least
// one destination group (they were delivered back to back there); pairs
// sharing two groups are delivered in the same relative order at both,
// which is why the ring stays invisible to the pairwise prefix-order
// check and survived every hunt since PR 1. Anything else — an
// integrity, agreement or prefix-order violation — is a NEW bug and
// fails the test.
func requireKnownRing(t *testing.T, rec *trace.Recorder) []amcast.MsgID {
	t.Helper()
	if err := rec.CheckIntegrity(); err != nil {
		t.Fatalf("unexpected violation shape: %v", err)
	}
	if err := rec.CheckAgreement(); err != nil {
		t.Fatalf("unexpected violation shape: %v", err)
	}
	if err := rec.CheckPrefixOrder(); err != nil {
		t.Fatalf("known ring is invisible to prefix order, got: %v", err)
	}
	ring := findDeliveryCycle(rec)
	if ring == nil {
		t.Fatal("CheckAcyclicOrder failed but no cycle extracted")
	}
	for i, id := range ring {
		next := ring[(i+1)%len(ring)]
		if shared := sharedDsts(rec, id, next); len(shared) == 0 {
			t.Fatalf("ring %v: adjacent members %s and %s share no destination group — "+
				"not a delivery-chain ring", ring, id, next)
		}
	}
	return ring
}

// TestFig5KnownRingSignature replays the long-open repro
// flexbench -experiment fig5 -scale 0.02 -seed 2 -verify and pins its
// failure shape: an acyclic-order violation with the fresh-request ring
// signature, and nothing else. If the run comes out clean, the known
// issue got fixed — flip this test and core.TestFreshRequestRingCycle
// to assert clean runs, and update DESIGN.md §4 and ROADMAP.md.
func TestFig5KnownRingSignature(t *testing.T) {
	if testing.Short() {
		t.Skip("fig5-scale replay; skipped in -short")
	}
	res, err := harness.Run(fig5Config(2, 250_000))
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Trace.CheckAcyclicOrder(); err == nil {
		t.Fatal("fig5 seed 2 no longer cycles: the known issue appears fixed — flip this " +
			"test and core.TestFreshRequestRingCycle, and update DESIGN.md §4 and ROADMAP.md")
	}
	ring := requireKnownRing(t, res.Trace)
	t.Logf("known ring reproduced: %v (length %d)", ring, len(ring))
}

// TestFig5RingWithoutFlushGC reruns seed 2 with the flush client
// disabled entirely: the ring still forms (a different one — timing
// shifts without flush traffic — but the same signature). This pins
// down empirically what the scripted shrink shows structurally: the
// hole is in the base NOTIF/flush-ack ordering machinery, not in §4.3
// garbage collection. The historical "flush-GC bug" label on this item
// was a misattribution.
func TestFig5RingWithoutFlushGC(t *testing.T) {
	if testing.Short() {
		t.Skip("fig5-scale replay; skipped in -short")
	}
	res, err := harness.Run(fig5Config(2, 0))
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Trace.CheckAcyclicOrder(); err == nil {
		t.Fatal("fig5 seed 2 without flush no longer cycles — if the known issue got " +
			"fixed, update this test, DESIGN.md §4 and ROADMAP.md")
	}
	ring := requireKnownRing(t, res.Trace)
	t.Logf("ring without any flush/GC traffic: %v (length %d)", ring, len(ring))
}

// TestFig5SeedSweep brackets the seed sensitivity of the known ring on
// the exact fig5 configuration: most seeds pass — the ring needs a
// precise coincidence where k ≥ 5 rank-chained two-destination messages
// are each delivered on the lca fast path inside the in-flight window
// of their ring predecessor's MSG, every covering flush ack beats its
// group's inversion, and the duplicate-NOTIF fold suppresses the one
// late re-certification (see core.TestFreshRequestRingCycle). The sweep
// asserts the flexbench default seed (1) passes, that seed 2 — the
// documented repro — fails, and that every failing seed fails with the
// known-ring signature only.
func TestFig5SeedSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("fig5-scale seed sweep; skipped in -short")
	}
	failing := make(map[int64]int)
	for seed := int64(1); seed <= 8; seed++ {
		res, err := harness.Run(fig5Config(seed, 250_000))
		if err != nil {
			t.Fatal(err)
		}
		if err := res.Trace.CheckAcyclicOrder(); err == nil {
			// Clean runs must be FULLY clean.
			if err := res.Trace.CheckAll(true); err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			continue
		}
		ring := requireKnownRing(t, res.Trace)
		failing[seed] = len(ring)
		t.Logf("seed %d: known ring %v", seed, ring)
	}
	if _, ok := failing[1]; ok {
		t.Error("flexbench default seed 1 fails; the documented repro instructions are stale")
	}
	if _, ok := failing[2]; !ok {
		t.Error("seed 2 no longer reproduces the known ring — if the issue got fixed, " +
			"update this test, DESIGN.md §4 and ROADMAP.md")
	}
	if len(failing) == len(fig5Seeds()) {
		t.Error("every seed fails: the ring is no longer a rare coincidence, something regressed")
	}
	t.Logf("failing seeds (ring length): %v of %d swept", failing, len(fig5Seeds()))
}

func fig5Seeds() []int64 {
	out := make([]int64, 8)
	for i := range out {
		out[i] = int64(i + 1)
	}
	return out
}
