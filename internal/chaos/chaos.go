// Package chaos is a deterministic fault-injection and randomized
// protocol-exploration layer over the discrete-event simulator
// (internal/sim). It subjects the atomic multicast protocols to the
// failure scenarios the paper's model admits — message retransmission
// delays, duplication, reordering jitter, transient partitions with
// auto-heal, and group-server crash/recovery through the
// amcast.SnapshotEngine API — and validates every explored schedule
// against the paper's safety properties using the internal/trace
// checkers:
//
//   - acyclic global delivery order (plus prefix order),
//   - agreement: every multicast is delivered by all of its destinations
//     once the run quiesces, crashes notwithstanding,
//   - integrity: at-most-once delivery, only at destinations,
//   - genuineness (minimality): only the sender, the destinations and
//     previously involved groups communicate (genuine protocols only).
//
// All randomness is drawn from a per-schedule seed, so any reported
// violation reproduces exactly from its seed (RunSchedule), in the spirit
// of systematic state-space exploration for protocol middleware (CADP,
// arXiv:2111.08203) and simulation testing of distributed databases.
//
// The fault model preserves the protocols' channel assumptions: links are
// reliable FIFO (TCP), so "dropping" a message manifests as a
// retransmission delay with head-of-line blocking, a transient partition
// delays traffic until it heals, and a crashed server loses no inbound
// traffic — the network parks it until restart — but does lose its
// volatile state, which it must rebuild from its last snapshot plus a
// write-ahead input log (the same recovery shape internal/smr implements
// with Paxos log replay).
package chaos

import (
	"fmt"
	"math/rand"

	"flexcast/amcast"
	"flexcast/internal/sim"
)

// EngineFactory builds the protocol engine of one group. Engines must
// implement amcast.SnapshotEngine so crash/recovery can be explored.
type EngineFactory func(g amcast.GroupID) (amcast.SnapshotEngine, error)

// Deployment describes the protocol under test; internal/harness builds
// one per protocol (FlexCast, Skeen's, hierarchical).
type Deployment struct {
	// Name labels the deployment in reports.
	Name string
	// Groups is the group set.
	Groups []amcast.GroupID
	// Factory builds one engine per group.
	Factory EngineFactory
	// Route maps a message to its protocol entry node(s).
	Route func(m amcast.Message) []amcast.NodeID
	// Minimality enables the genuineness audit (false for the
	// non-genuine hierarchical protocol).
	Minimality bool
	// Decode rebuilds an engine snapshot from its binary form — the
	// protocol half of the durable on-disk format. Required for
	// Options.Durable, unused otherwise.
	Decode func(data []byte) (amcast.Snapshot, error)
	// Instrument, when non-nil, is called once per schedule right after
	// the engines are built — the hook execute-mode deployments use to
	// attach execution observers and follower read replicas
	// (store.Executor). now is the schedule's simulator clock (the lease
	// clock for follower read leases). The returned Instrumentation
	// provides the schedule's execution-level hooks: the
	// post-quiescence audit and, optionally, the read fast path the
	// explorer's clients exercise.
	Instrument func(engines map[amcast.GroupID]amcast.SnapshotEngine, now func() sim.Time) *Instrumentation
}

// Instrumentation carries one schedule's execution-level hooks.
type Instrumentation struct {
	// FastRead, when non-nil, executes one read-only fast-path
	// transaction at group g, requiring barrier (the issuing client's
	// observed delivered prefix) — served either by the group's node or,
	// on deployments with follower read replicas, by a lease-gated
	// follower chosen from the rng. The rng derives the read
	// deterministically from the schedule seed; now is the simulator's
	// current time (the lease clock). Returns:
	//
	//   - (true, nil): the read served;
	//   - (false, nil): a follower refused for want of a valid lease —
	//     the correct behavior after its grantor crashed or partitioned,
	//     counted (ScheduleResult.LeaseRefusals), never a violation;
	//   - (_, err): a contract violation — including a barrier the
	//     serving replica cannot satisfy, which in the simulator means
	//     the delivered-prefix contract broke — reported as the
	//     schedule's violation.
	FastRead func(rng *rand.Rand, g amcast.GroupID, barrier uint64, now sim.Time) (served bool, err error)
	// PostCheck, when non-nil, runs after the schedule quiesces,
	// auditing execution-level properties (serializability including
	// fast reads and lease validity, store invariants, replica digests).
	// Its error is the schedule's violation.
	PostCheck func() error
}

func (d *Deployment) validate() error {
	if len(d.Groups) == 0 {
		return fmt.Errorf("chaos: deployment has no groups")
	}
	if d.Factory == nil || d.Route == nil {
		return fmt.Errorf("chaos: deployment missing factory or route")
	}
	return nil
}

// Options parameterize exploration. The zero value of every field gets a
// sensible default; a zero Options explores a moderately hostile
// environment. Setting a fault knob (DropProb, DupProb, JitterMax,
// Partitions, Crashes) to a negative value disables that fault class —
// useful for isolating which class triggers a violation.
type Options struct {
	// Seed drives everything: workload, latencies, faults. Schedule i of
	// Explore runs with ScheduleSeed(Seed, i).
	Seed int64
	// Schedules is the number of seeded schedules Explore runs (default
	// 50).
	Schedules int

	// Clients and Messages shape the workload: Clients concurrent
	// sources issuing Messages multicasts each (defaults 3 and 10), with
	// destination sets of up to MaxDst groups (default: all groups),
	// injected at random times in [0, InjectWindow] (default 2 virtual
	// seconds).
	Clients      int
	Messages     int
	MaxDst       int
	InjectWindow sim.Time
	// ClosedLoop switches the workload from open-loop (all multicasts
	// scheduled up front at random times) to closed-loop: each client
	// issues its next multicast the moment the previous one completed
	// (every destination's reply received), after ThinkTime. Closed-loop
	// schedules keep the protocol continuously saturated relative to its
	// own progress — delivery, ack and flush phases overlap densely in
	// ways the open-loop injector rarely produces.
	ClosedLoop bool
	// ThinkTime is the closed-loop delay between a completion and the
	// next issue (default 0: immediate).
	ThinkTime sim.Time
	// FlushEvery adds the paper's §4.3 flush/garbage-collection client:
	// a flush message multicast to every group on this period, so
	// exploration also covers history pruning (default 400ms; negative
	// disables).
	FlushEvery sim.Time

	// DropProb is the per-transmission probability of a simulated drop:
	// the envelope is delayed by a retransmission backoff of roughly
	// RetransmitDelay (default probability 0.05, default backoff 30ms),
	// and later traffic on the link queues behind it.
	DropProb        float64
	RetransmitDelay sim.Time
	// DupProb is the per-transmission probability of delivering a
	// duplicate copy (default 0.02).
	DupProb float64
	// JitterMax adds uniform per-transmission latency jitter in
	// [0, JitterMax) (default 5ms).
	JitterMax sim.Time

	// Partitions is the number of transient directed-link partition
	// windows per schedule (default 2); each lasts around PartitionMean
	// (default 150ms) and heals automatically.
	Partitions    int
	PartitionMean sim.Time

	// Crashes is the number of group-server crash/recovery events per
	// schedule (default 2, distinct groups); each server stays down for
	// around DowntimeMean (default 200ms) and recovers from its last
	// snapshot plus its write-ahead input log.
	Crashes      int
	DowntimeMean sim.Time
	// SnapshotEvery is the snapshot cadence in input envelopes (default
	// 16): state since the last snapshot must be rebuilt by WAL replay
	// on recovery.
	SnapshotEvery int
	// Durable routes every node's persistence through the real durable
	// backend (internal/durable) in a per-schedule temporary directory,
	// instead of the in-memory snapshot+WAL model: inputs are appended
	// to a CRC-framed on-disk WAL, snapshots rotate it on the
	// SnapshotEvery cadence, a crash abandons the files exactly as
	// kill -9 would, and recovery rebuilds a fresh engine from disk
	// (Deployment.Decode required). Every recovery is audited: the
	// recovered state must equal the crashed engine's final state byte
	// for byte, and the replay length must stay within the snapshot
	// cadence. Does not compose with Instrument deployments (their
	// observers would bind to pre-crash engines).
	Durable bool
	// TornTailProb is the per-crash probability, in durable mode, that
	// the abandoned WAL is left with a torn tail — a partial record cut
	// mid-frame, the artifact of dying mid-append. Recovery must detect
	// and discard it (injections are counted in FaultStats.TornTails;
	// default 0.5, negative disables).
	TornTailProb float64

	// FastReadProb is the probability that a client reply triggers a
	// local-read fast-path transaction at the replying group, at the
	// client's observed delivered-prefix barrier (only on deployments
	// whose Instrumentation provides FastRead; default 0.25, negative
	// disables). Reads interleave with crashes, recoveries and
	// partitions, auditing the fast path under the full fault model.
	FastReadProb float64

	// TraceSample enables the sim-time lifecycle tracer: one multicast
	// in TraceSample is stamped at submit, first delivery and
	// completion, and the per-stage decomposition (in simulated
	// nanoseconds) aggregates across schedules into Report.Stages
	// (default 4; negative disables).
	TraceSample int

	// BugFlipEvery is a test-only hook that validates the checker
	// pipeline: when > 0, every BugFlipEvery-th multi-delivery batch at
	// a group records its first two deliveries in swapped order — a
	// deliberate ordering violation the safety checker must catch.
	// Production callers leave it 0.
	BugFlipEvery int

	// Observer, when non-nil, sees every envelope as it is handed to a
	// node (after faults, queueing and crash parking) — a debugging aid
	// for analyzing a failing schedule. It does not perturb the run.
	Observer sim.SendHook

	// Latency, when non-nil, replaces the default random per-link
	// latency model with a fixed one — e.g. the harness's WAN matrix
	// (internal/harness.ApplyWANProfile), whose latency topology the
	// random model does not emulate.
	Latency func(from, to amcast.NodeID) sim.Time
	// NextTx, when non-nil, replaces the uniform random workload: it is
	// called once per (schedule, client) with the schedule's seed and
	// returns the generator of that client's multicast sequence
	// (destination set and payload per message). The harness's WAN
	// profile plugs gTPC-C destination locality (and executable
	// transaction payloads) in through it.
	NextTx func(scheduleSeed int64, client int) func(i int) ([]amcast.GroupID, []byte)
}

func (o *Options) fill() {
	if o.Schedules == 0 {
		o.Schedules = 50
	}
	if o.Clients == 0 {
		o.Clients = 3
	}
	if o.Messages == 0 {
		o.Messages = 10
	}
	if o.InjectWindow == 0 {
		o.InjectWindow = 2_000_000
	}
	if o.FlushEvery == 0 {
		o.FlushEvery = 400_000
	}
	if o.DropProb == 0 {
		o.DropProb = 0.05
	}
	if o.RetransmitDelay == 0 {
		o.RetransmitDelay = 30_000
	}
	if o.DupProb == 0 {
		o.DupProb = 0.02
	}
	if o.JitterMax == 0 {
		o.JitterMax = 5_000
	}
	if o.Partitions == 0 {
		o.Partitions = 2
	}
	if o.PartitionMean == 0 {
		o.PartitionMean = 150_000
	}
	if o.Crashes == 0 {
		o.Crashes = 2
	}
	if o.DowntimeMean == 0 {
		o.DowntimeMean = 200_000
	}
	if o.SnapshotEvery == 0 {
		o.SnapshotEvery = 16
	}
	if o.TornTailProb == 0 {
		o.TornTailProb = 0.5
	}
	if o.FastReadProb == 0 {
		o.FastReadProb = 0.25
	}
	if o.TraceSample == 0 {
		o.TraceSample = 4
	}
	// Negative knobs ("fault class off") are kept as-is so fill stays
	// idempotent; the injector treats them as zero.
}

// ScheduleSeed derives the seed of schedule i from the base seed, using
// a splitmix64 step so neighbouring base seeds do not share schedules.
func ScheduleSeed(base int64, i int) int64 {
	z := uint64(base) + uint64(i+1)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}
