package chaos

import (
	"fmt"
	"math/rand"

	"flexcast/amcast"
	"flexcast/internal/sim"
)

// FaultStats counts the faults injected into one schedule.
type FaultStats struct {
	// Retransmits counts simulated drops (envelopes delayed by a
	// retransmission backoff).
	Retransmits int
	// Duplicates counts envelopes delivered twice.
	Duplicates int
	// PartitionHits counts envelopes delayed to a partition's heal time.
	PartitionHits int
	// Crashes counts group-server crash/recovery events executed.
	Crashes int
	// Parked counts envelopes that arrived at crashed servers and were
	// replayed on restart.
	Parked int
	// TornTails counts crashes that left a torn record at the WAL tail
	// (durable mode only); recovery must discard every one.
	TornTails int
}

// Add accumulates s2 into s.
func (s *FaultStats) Add(s2 FaultStats) {
	s.Retransmits += s2.Retransmits
	s.Duplicates += s2.Duplicates
	s.PartitionHits += s2.PartitionHits
	s.Crashes += s2.Crashes
	s.Parked += s2.Parked
	s.TornTails += s2.TornTails
}

// window is a half-open interval of simulated time.
type window struct {
	from, to amcast.NodeID  // partition links only
	group    amcast.GroupID // crash windows only
	start    sim.Time
	end      sim.Time
	// torn marks a durable-mode crash that leaves a partial record at
	// the WAL tail.
	torn bool
}

// maxTraceEvents bounds the per-schedule fault trace kept for reports.
const maxTraceEvents = 64

// injector draws every fault of one schedule from a seeded source: the
// partition and crash windows are fixed up front, per-envelope faults are
// drawn in deterministic simulator order.
type injector struct {
	opt        Options
	rng        *rand.Rand
	s          *sim.Simulator
	partitions []window
	crashes    []window
	stats      FaultStats
	trace      []string
	truncated  int
}

// newInjector pre-draws the schedule's partition and crash windows.
// Crash windows use distinct groups, so no group crashes twice and
// windows never overlap on one server.
func newInjector(opt Options, groups []amcast.GroupID, rng *rand.Rand, s *sim.Simulator) *injector {
	inj := &injector{opt: opt, rng: rng, s: s}
	for i := 0; i < opt.Partitions && len(groups) >= 2; i++ {
		a := groups[rng.Intn(len(groups))]
		b := groups[rng.Intn(len(groups))]
		for b == a {
			b = groups[rng.Intn(len(groups))]
		}
		start := sim.Time(rng.Int63n(int64(opt.InjectWindow)))
		dur := opt.PartitionMean/2 + sim.Time(rng.Int63n(int64(opt.PartitionMean)))
		inj.partitions = append(inj.partitions, window{
			from: amcast.GroupNode(a), to: amcast.GroupNode(b),
			start: start, end: start + dur,
		})
		inj.note(start, "partition %s->%s for %dµs", amcast.GroupNode(a), amcast.GroupNode(b), dur)
	}
	nCrashes := opt.Crashes
	if nCrashes > len(groups) {
		nCrashes = len(groups)
	}
	perm := rng.Perm(len(groups))
	for i := 0; i < nCrashes; i++ {
		g := groups[perm[i]]
		start := sim.Time(rng.Int63n(int64(opt.InjectWindow)))
		dur := opt.DowntimeMean/2 + sim.Time(rng.Int63n(int64(opt.DowntimeMean)))
		torn := opt.Durable && opt.TornTailProb > 0 && rng.Float64() < opt.TornTailProb
		inj.crashes = append(inj.crashes, window{group: g, start: start, end: start + dur, torn: torn})
		if torn {
			inj.note(start, "crash %s for %dµs (torn WAL tail)", amcast.GroupNode(g), dur)
		} else {
			inj.note(start, "crash %s for %dµs", amcast.GroupNode(g), dur)
		}
	}
	return inj
}

// Fault implements sim.FaultFunc.
func (inj *injector) Fault(from, to amcast.NodeID, env amcast.Envelope) sim.LinkFault {
	var f sim.LinkFault
	now := inj.s.Now()
	// Transient partition: the envelope is held back (sender-side
	// retransmission) until just after the heal.
	jitterMax := inj.opt.JitterMax
	if jitterMax < 0 {
		jitterMax = 0
	}
	for _, w := range inj.partitions {
		if w.from == from && w.to == to && now >= w.start && now < w.end {
			f.Delay += w.end - now + sim.Time(inj.rng.Int63n(int64(jitterMax)+1))
			inj.stats.PartitionHits++
		}
	}
	if inj.rng.Float64() < inj.opt.DropProb {
		f.Delay += inj.opt.RetransmitDelay + sim.Time(inj.rng.Int63n(int64(inj.opt.RetransmitDelay)))
		inj.stats.Retransmits++
		inj.note(now, "retransmit %s %s %s->%s", env.Kind, env.Msg.ID, from, to)
	}
	if jitterMax > 0 {
		f.Delay += sim.Time(inj.rng.Int63n(int64(jitterMax)))
	}
	if inj.rng.Float64() < inj.opt.DupProb {
		f.Duplicates = 1
		inj.stats.Duplicates++
		inj.note(now, "duplicate %s %s %s->%s", env.Kind, env.Msg.ID, from, to)
	}
	return f
}

// note appends one bounded fault-trace line.
func (inj *injector) note(at sim.Time, format string, args ...interface{}) {
	if len(inj.trace) >= maxTraceEvents {
		inj.truncated++
		return
	}
	inj.trace = append(inj.trace, fmt.Sprintf("t=%-8d %s", at, fmt.Sprintf(format, args...)))
}

// FaultTrace returns the recorded fault events, noting truncation.
func (inj *injector) FaultTrace() []string {
	t := append([]string(nil), inj.trace...)
	if inj.truncated > 0 {
		t = append(t, fmt.Sprintf("... %d more fault events elided", inj.truncated))
	}
	return t
}
