package client

import (
	"testing"

	"flexcast/amcast"
	"flexcast/internal/sim"
)

// echoGroup replies to every request immediately, simulating an
// infinitely fast single-group protocol.
type echoGroup struct {
	g     amcast.GroupID
	net   *sim.Network
	delay sim.Time
	s     *sim.Simulator
}

func (e *echoGroup) HandleEnvelope(env amcast.Envelope) {
	if env.Kind != amcast.KindRequest {
		return
	}
	reply := amcast.Envelope{Kind: amcast.KindReply, From: amcast.GroupNode(e.g), Msg: env.Msg.Header()}
	to := env.Msg.Sender
	if e.delay > 0 {
		e.s.Schedule(e.delay, func() { e.net.Send(amcast.GroupNode(e.g), to, reply) })
	} else {
		e.net.Send(amcast.GroupNode(e.g), to, reply)
	}
}

func fixedLatency(l sim.Time) sim.LatencyFunc {
	return func(from, to amcast.NodeID) sim.Time { return l }
}

func deploy(t *testing.T, nGroups int, delays map[amcast.GroupID]sim.Time) (*sim.Simulator, *sim.Network) {
	t.Helper()
	s := sim.New()
	net := sim.NewNetwork(s, fixedLatency(100))
	for i := 1; i <= nGroups; i++ {
		g := amcast.GroupID(i)
		net.Register(amcast.GroupNode(g), &echoGroup{g: g, net: net, delay: delays[g], s: s})
	}
	return s, net
}

func allDst(dst ...amcast.GroupID) RouteFunc {
	return func(m amcast.Message) []amcast.NodeID {
		nodes := make([]amcast.NodeID, len(m.Dst))
		for i, g := range m.Dst {
			nodes[i] = amcast.GroupNode(g)
		}
		return nodes
	}
}

func TestClosedLoop(t *testing.T) {
	s, net := deploy(t, 2, nil)
	var completions []Completion
	c := MustNew(Config{
		Index:  0,
		Home:   1,
		Route:  allDst(),
		Source: TxSourceFunc(func() Tx { return Tx{Dst: []amcast.GroupID{1, 2}} }),
		OnComplete: func(cp Completion) {
			completions = append(completions, cp)
			if len(completions) == 3 {
				// Stop after three to keep the run finite.
			}
		},
	}, s, net)
	c.Start(0)
	s.RunUntil(1000) // several request/reply round trips at 200µs each
	c.Stop()
	s.Run()
	if len(completions) < 3 {
		t.Fatalf("completed %d transactions, want >= 3", len(completions))
	}
	if c.Issued() < c.Completed() {
		t.Fatalf("issued %d < completed %d", c.Issued(), c.Completed())
	}
	for _, cp := range completions {
		if len(cp.Replies) != 2 {
			t.Fatalf("completion with %d replies", len(cp.Replies))
		}
	}
}

func TestRepliesSortedByArrival(t *testing.T) {
	// Group 2 replies 500µs late: it must appear as the second
	// destination.
	s, net := deploy(t, 2, map[amcast.GroupID]sim.Time{2: 500})
	var got Completion
	c := MustNew(Config{
		Index:      1,
		Home:       1,
		Route:      allDst(),
		Source:     TxSourceFunc(func() Tx { return Tx{Dst: []amcast.GroupID{1, 2}} }),
		OnComplete: func(cp Completion) { got = cp },
	}, s, net)
	c.Start(0)
	s.RunUntil(250)
	c.Stop()
	s.Run()
	if len(got.Replies) != 2 {
		t.Fatalf("replies = %v", got.Replies)
	}
	if got.Replies[0].Group != 1 || got.Replies[1].Group != 2 {
		t.Fatalf("reply order = %v, want group 1 then 2", got.Replies)
	}
	if got.Replies[0].At >= got.Replies[1].At {
		t.Fatal("reply times not increasing")
	}
}

func TestDuplicateRepliesIgnored(t *testing.T) {
	s := sim.New()
	net := sim.NewNetwork(s, fixedLatency(10))
	// A group that replies twice to each request.
	net.Register(amcast.GroupNode(1), sim.HandlerFunc(func(env amcast.Envelope) {
		if env.Kind != amcast.KindRequest {
			return
		}
		reply := amcast.Envelope{Kind: amcast.KindReply, From: amcast.GroupNode(1), Msg: env.Msg.Header()}
		net.Send(amcast.GroupNode(1), env.Msg.Sender, reply)
		net.Send(amcast.GroupNode(1), env.Msg.Sender, reply)
	}))
	completed := 0
	c := MustNew(Config{
		Index:      0,
		Home:       1,
		Route:      allDst(),
		Source:     TxSourceFunc(func() Tx { return Tx{Dst: []amcast.GroupID{1, 2}} }),
		OnComplete: func(cp Completion) { completed++ },
	}, s, net)
	// Group 2 never replies: the duplicate from group 1 must not complete
	// the transaction.
	net.Register(amcast.GroupNode(2), sim.HandlerFunc(func(env amcast.Envelope) {}))
	c.Start(0)
	s.Run()
	if completed != 0 {
		t.Fatal("duplicate reply completed the transaction")
	}
}

func TestThinkTime(t *testing.T) {
	s, net := deploy(t, 1, nil)
	var issues []sim.Time
	c := MustNew(Config{
		Index: 0,
		Home:  1,
		Route: allDst(),
		Source: TxSourceFunc(func() Tx {
			issues = append(issues, s.Now())
			return Tx{Dst: []amcast.GroupID{1}}
		}),
		ThinkTime: 1000,
	}, s, net)
	c.Start(0)
	s.RunUntil(2500)
	c.Stop()
	s.Run()
	if len(issues) < 2 {
		t.Fatalf("issues = %v", issues)
	}
	// Round trip is 200µs; think time adds 1000µs between completion and
	// the next issue.
	if gap := issues[1] - issues[0]; gap != 1200 {
		t.Fatalf("issue gap = %d, want 1200", gap)
	}
}

func TestStopPreventsNewIssues(t *testing.T) {
	s, net := deploy(t, 1, nil)
	c := MustNew(Config{
		Index:  0,
		Home:   1,
		Route:  allDst(),
		Source: TxSourceFunc(func() Tx { return Tx{Dst: []amcast.GroupID{1}} }),
	}, s, net)
	c.Start(0)
	s.RunUntil(200) // exactly one round trip
	c.Stop()
	s.Run()
	issued := c.Issued()
	if issued == 0 {
		t.Fatal("nothing issued")
	}
	if c.Completed() != issued {
		t.Fatalf("issued %d, completed %d after drain", issued, c.Completed())
	}
}

func TestMessageIDsUniqueAndOwned(t *testing.T) {
	s, net := deploy(t, 1, nil)
	var ms []amcast.Message
	c := MustNew(Config{
		Index:      7,
		Home:       1,
		Route:      allDst(),
		Source:     TxSourceFunc(func() Tx { return Tx{Dst: []amcast.GroupID{1}} }),
		OnComplete: func(cp Completion) { ms = append(ms, cp.Msg) },
	}, s, net)
	c.Start(0)
	s.RunUntil(1000)
	c.Stop()
	s.Run()
	seen := make(map[amcast.MsgID]bool)
	for _, m := range ms {
		if m.ID.Client() != 7 {
			t.Fatalf("message id %s not owned by client 7", m.ID)
		}
		if seen[m.ID] {
			t.Fatalf("duplicate id %s", m.ID)
		}
		seen[m.ID] = true
	}
}

func TestNewValidation(t *testing.T) {
	s := sim.New()
	net := sim.NewNetwork(s, fixedLatency(1))
	if _, err := New(Config{Index: 0, Home: 1}, s, net); err == nil {
		t.Fatal("missing route/source accepted")
	}
}
