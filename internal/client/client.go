// Package client implements the closed-loop clients of the paper's
// evaluation (§5.3): each client issues one transaction at a time to the
// protocol-specific entry node(s), waits for a reply from every
// destination group, records per-destination latencies, and issues the
// next transaction. Clients are simulator handlers; the same logic drives
// the TCP runtime through cmd/flexclient.
package client

import (
	"fmt"
	"sort"

	"flexcast/amcast"
	"flexcast/internal/sim"
)

// Tx is one transaction to issue.
type Tx struct {
	Dst     []amcast.GroupID
	Payload []byte
	Flags   amcast.MsgFlags
}

// TxSource produces the client's transactions.
type TxSource interface {
	Next() Tx
}

// TxSourceFunc adapts a function to TxSource.
type TxSourceFunc func() Tx

// Next implements TxSource.
func (f TxSourceFunc) Next() Tx { return f() }

// RouteFunc maps a message to the protocol's entry node(s): FlexCast and
// the hierarchical protocol route to the (respective) lowest common
// ancestor; Skeen's protocol routes to every destination.
type RouteFunc func(m amcast.Message) []amcast.NodeID

// Reply records one destination's response.
type Reply struct {
	Group amcast.GroupID
	At    sim.Time
}

// Completion summarizes one finished transaction.
type Completion struct {
	Msg    amcast.Message
	Issued sim.Time
	// Replies are sorted by arrival time: Replies[0] is the first
	// destination to respond (the paper's "1st destination").
	Replies []Reply
}

// Config configures one client.
type Config struct {
	// Index is the client number; it determines the NodeID and message ids.
	Index int
	// Home is the client's region (its nearest group).
	Home amcast.GroupID
	// Route maps messages to entry nodes.
	Route RouteFunc
	// Source generates transactions.
	Source TxSource
	// ThinkTime is the delay between a completion and the next issue.
	ThinkTime sim.Time
	// OnComplete observes every completed transaction; may be nil.
	OnComplete func(c Completion)
}

// Client is a closed-loop client attached to a simulated network.
type Client struct {
	cfg  Config
	id   amcast.NodeID
	s    *sim.Simulator
	net  *sim.Network
	seq  uint64
	open *openTx
	stop bool

	issued    uint64
	completed uint64
}

type openTx struct {
	msg     amcast.Message
	issued  sim.Time
	replies []Reply
	seen    map[amcast.GroupID]bool
}

// New builds a client and registers it on the network.
func New(cfg Config, s *sim.Simulator, net *sim.Network) (*Client, error) {
	if cfg.Route == nil || cfg.Source == nil {
		return nil, fmt.Errorf("client: missing route or source")
	}
	c := &Client{cfg: cfg, id: amcast.ClientNode(cfg.Index), s: s, net: net}
	net.Register(c.id, c)
	return c, nil
}

// MustNew is New for known-good configurations; it panics on error.
func MustNew(cfg Config, s *sim.Simulator, net *sim.Network) *Client {
	c, err := New(cfg, s, net)
	if err != nil {
		panic(err)
	}
	return c
}

// ID returns the client's node id.
func (c *Client) ID() amcast.NodeID { return c.id }

// Home returns the client's home group.
func (c *Client) Home() amcast.GroupID { return c.cfg.Home }

// Issued and Completed report lifetime transaction counts.
func (c *Client) Issued() uint64 { return c.issued }

// Completed reports the number of finished transactions.
func (c *Client) Completed() uint64 { return c.completed }

// Start schedules the client's first transaction after the given delay.
func (c *Client) Start(delay sim.Time) {
	c.s.Schedule(delay, c.issue)
}

// Stop prevents further transactions; the in-flight one still completes.
func (c *Client) Stop() { c.stop = true }

func (c *Client) issue() {
	if c.stop || c.open != nil {
		return
	}
	tx := c.cfg.Source.Next()
	c.seq++
	m := amcast.Message{
		ID:      amcast.NewMsgID(c.cfg.Index, c.seq),
		Sender:  c.id,
		Dst:     amcast.NormalizeDst(append([]amcast.GroupID(nil), tx.Dst...)),
		Flags:   tx.Flags,
		Payload: tx.Payload,
	}
	c.open = &openTx{msg: m, issued: c.s.Now(), seen: make(map[amcast.GroupID]bool, len(m.Dst))}
	c.issued++
	for _, to := range c.cfg.Route(m) {
		c.net.Send(c.id, to, amcast.Envelope{Kind: amcast.KindRequest, From: c.id, Msg: m})
	}
}

// HandleEnvelope implements sim.Handler: it consumes KindReply envelopes.
func (c *Client) HandleEnvelope(env amcast.Envelope) {
	if env.Kind != amcast.KindReply || c.open == nil || env.Msg.ID != c.open.msg.ID {
		return
	}
	g := env.From.Group()
	if c.open.seen[g] {
		return
	}
	c.open.seen[g] = true
	c.open.replies = append(c.open.replies, Reply{Group: g, At: c.s.Now()})
	if len(c.open.replies) < len(c.open.msg.Dst) {
		return
	}
	done := c.open
	c.open = nil
	c.completed++
	sort.Slice(done.replies, func(i, j int) bool {
		if done.replies[i].At != done.replies[j].At {
			return done.replies[i].At < done.replies[j].At
		}
		return done.replies[i].Group < done.replies[j].Group
	})
	if c.cfg.OnComplete != nil {
		c.cfg.OnComplete(Completion{Msg: done.msg, Issued: done.issued, Replies: done.replies})
	}
	if c.stop {
		return
	}
	if c.cfg.ThinkTime > 0 {
		c.s.Schedule(c.cfg.ThinkTime, c.issue)
	} else {
		c.issue()
	}
}
