package skeen_test

import (
	"testing"

	"flexcast/amcast"
	"flexcast/internal/prototest"
	"flexcast/internal/skeen"
)

// TestSnapshotReplay checks the SnapshotEngine contract for Skeen's
// protocol: clock, timestamp tables and pending state must survive a
// snapshot/restore round trip mid-run.
func TestSnapshotReplay(t *testing.T) {
	groups := []amcast.GroupID{1, 2, 3, 4}
	route := func(m amcast.Message) []amcast.NodeID {
		nodes := make([]amcast.NodeID, len(m.Dst))
		for i, g := range m.Dst {
			nodes[i] = amcast.GroupNode(g)
		}
		return nodes
	}
	factory := func(g amcast.GroupID) amcast.Engine {
		return skeen.MustNew(skeen.Config{Group: g, Groups: groups})
	}
	for _, snapAfter := range []int{0, 3, 25} {
		for seed := int64(1); seed <= 4; seed++ {
			prototest.RunSnapshotReplay(t, prototest.RandomConfig{
				Groups:   groups,
				Clients:  3,
				Messages: 12,
				Route:    route,
				Factory:  factory,
				Seed:     seed,
				Jitter:   3000,
			}, snapAfter)
		}
	}
}

// TestDurableReplay audits recovery from the real durable backend's
// kill -9 image under clean and torn-WAL-tail crash shapes.
func TestDurableReplay(t *testing.T) {
	groups := []amcast.GroupID{1, 2, 3, 4}
	route := func(m amcast.Message) []amcast.NodeID {
		nodes := make([]amcast.NodeID, len(m.Dst))
		for i, g := range m.Dst {
			nodes[i] = amcast.GroupNode(g)
		}
		return nodes
	}
	factory := func(g amcast.GroupID) amcast.Engine {
		return skeen.MustNew(skeen.Config{Group: g, Groups: groups})
	}
	for seed := int64(1); seed <= 3; seed++ {
		prototest.RunDurableReplay(t, prototest.RandomConfig{
			Groups:   groups,
			Clients:  3,
			Messages: 12,
			Route:    route,
			Factory:  factory,
			Seed:     seed,
		}, skeen.UnmarshalSnapshot, 9)
	}
}

// TestRestoreRejectsMismatch verifies the Restore guard rails.
func TestRestoreRejectsMismatch(t *testing.T) {
	groups := []amcast.GroupID{1, 2}
	e1 := skeen.MustNew(skeen.Config{Group: 1, Groups: groups})
	e2 := skeen.MustNew(skeen.Config{Group: 2, Groups: groups})
	if err := e2.Restore(e1.Snapshot()); err == nil {
		t.Fatal("restore of group 1 snapshot into group 2 engine succeeded")
	}
}
