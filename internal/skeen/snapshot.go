package skeen

import (
	"fmt"

	"flexcast/amcast"
)

// snapshot is the Skeen engine's amcast.Snapshot: a deep copy of the
// Lamport clock, the pending-message table and the delivery state.
type snapshot struct {
	g          amcast.GroupID
	clock      uint64
	pend       map[amcast.MsgID]*pend
	delivered  map[amcast.MsgID]bool
	deliveries []amcast.Delivery
	seq        uint64
}

// SnapshotGroup implements amcast.Snapshot.
func (s *snapshot) SnapshotGroup() amcast.GroupID { return s.g }

var _ amcast.SnapshotEngine = (*Engine)(nil)

func copyPend(p *pend) *pend {
	c := &pend{
		msg:      p.msg,
		hasMsg:   p.hasMsg,
		localTS:  p.localTS,
		hasTS:    p.hasTS,
		ts:       make(map[amcast.GroupID]uint64, len(p.ts)),
		final:    p.final,
		hasFinal: p.hasFinal,
	}
	for g, ts := range p.ts {
		c.ts[g] = ts
	}
	return c
}

func copyPendTable(m map[amcast.MsgID]*pend) map[amcast.MsgID]*pend {
	c := make(map[amcast.MsgID]*pend, len(m))
	for id, p := range m {
		c[id] = copyPend(p)
	}
	return c
}

// Snapshot implements amcast.SnapshotEngine.
func (e *Engine) Snapshot() amcast.Snapshot {
	s := &snapshot{
		g:          e.g,
		clock:      e.clock,
		pend:       copyPendTable(e.pend),
		delivered:  make(map[amcast.MsgID]bool, len(e.delivered)),
		deliveries: append([]amcast.Delivery(nil), e.deliveries...),
		seq:        e.seq,
	}
	for id, v := range e.delivered {
		s.delivered[id] = v
	}
	return s
}

// Restore implements amcast.SnapshotEngine.
func (e *Engine) Restore(snap amcast.Snapshot) error {
	s, ok := snap.(*snapshot)
	if !ok {
		return fmt.Errorf("skeen: restore of foreign snapshot %T", snap)
	}
	if s.g != e.g {
		return fmt.Errorf("skeen: restore of group %d snapshot into group %d", s.g, e.g)
	}
	e.clock = s.clock
	e.pend = copyPendTable(s.pend)
	e.delivered = make(map[amcast.MsgID]bool, len(s.delivered))
	for id, v := range s.delivered {
		e.delivered[id] = v
	}
	e.deliveries = append([]amcast.Delivery(nil), s.deliveries...)
	e.seq = s.seq
	return nil
}
