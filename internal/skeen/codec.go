package skeen

import (
	"encoding/binary"
	"fmt"
	"sort"

	"flexcast/amcast"
	"flexcast/internal/codec"
)

// Binary snapshot codec for the Skeen engine; sorted map iteration
// keeps the encoding canonical.

var _ amcast.BinarySnapshot = (*snapshot)(nil)

// MarshalBinary implements amcast.BinarySnapshot.
func (s *snapshot) MarshalBinary() ([]byte, error) {
	buf := make([]byte, 0, 256)
	buf = binary.AppendUvarint(buf, uint64(uint32(s.g)))
	buf = binary.AppendUvarint(buf, s.clock)
	ids := make([]amcast.MsgID, 0, len(s.pend))
	for id := range s.pend {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	buf = binary.AppendUvarint(buf, uint64(len(ids)))
	for _, id := range ids {
		p := s.pend[id]
		buf = binary.AppendUvarint(buf, uint64(id))
		buf = codec.AppendMessage(buf, p.msg)
		buf = codec.AppendBool(buf, p.hasMsg)
		buf = binary.AppendUvarint(buf, p.localTS)
		buf = codec.AppendBool(buf, p.hasTS)
		gs := make([]amcast.GroupID, 0, len(p.ts))
		for g := range p.ts {
			gs = append(gs, g)
		}
		sort.Slice(gs, func(i, j int) bool { return gs[i] < gs[j] })
		buf = binary.AppendUvarint(buf, uint64(len(gs)))
		for _, g := range gs {
			buf = binary.AppendUvarint(buf, uint64(uint32(g)))
			buf = binary.AppendUvarint(buf, p.ts[g])
		}
		buf = binary.AppendUvarint(buf, p.final)
		buf = codec.AppendBool(buf, p.hasFinal)
	}
	del := make([]amcast.MsgID, 0, len(s.delivered))
	for id := range s.delivered {
		del = append(del, id)
	}
	sort.Slice(del, func(i, j int) bool { return del[i] < del[j] })
	buf = binary.AppendUvarint(buf, uint64(len(del)))
	for _, id := range del {
		buf = binary.AppendUvarint(buf, uint64(id))
		buf = codec.AppendBool(buf, s.delivered[id])
	}
	buf = binary.AppendUvarint(buf, uint64(len(s.deliveries)))
	for _, d := range s.deliveries {
		buf = codec.AppendDelivery(buf, d)
	}
	buf = binary.AppendUvarint(buf, s.seq)
	return buf, nil
}

// UnmarshalSnapshot decodes a snapshot previously produced by
// MarshalBinary.
func UnmarshalSnapshot(data []byte) (amcast.Snapshot, error) {
	r := codec.NewReader(data)
	s := &snapshot{
		g:     amcast.GroupID(r.Uvarint()),
		clock: r.Uvarint(),
	}
	nPend := r.Count()
	s.pend = make(map[amcast.MsgID]*pend, nPend)
	for i := 0; i < nPend && r.Err() == nil; i++ {
		id := amcast.MsgID(r.Uvarint())
		p := &pend{
			msg:     r.Message(),
			hasMsg:  r.Bool(),
			localTS: r.Uvarint(),
			hasTS:   r.Bool(),
			ts:      make(map[amcast.GroupID]uint64),
		}
		nTS := r.Count()
		for j := 0; j < nTS && r.Err() == nil; j++ {
			g := amcast.GroupID(r.Uvarint())
			p.ts[g] = r.Uvarint()
		}
		p.final = r.Uvarint()
		p.hasFinal = r.Bool()
		s.pend[id] = p
	}
	nDel := r.Count()
	s.delivered = make(map[amcast.MsgID]bool, nDel)
	for i := 0; i < nDel && r.Err() == nil; i++ {
		id := amcast.MsgID(r.Uvarint())
		s.delivered[id] = r.Bool()
	}
	nD := r.Count()
	s.deliveries = make([]amcast.Delivery, 0, nD)
	for i := 0; i < nD && r.Err() == nil; i++ {
		s.deliveries = append(s.deliveries, r.Delivery())
	}
	s.seq = r.Uvarint()
	if err := r.Close(); err != nil {
		return nil, fmt.Errorf("skeen: snapshot decode: %w", err)
	}
	return s, nil
}
