// Package skeen implements Skeen's genuine atomic multicast protocol —
// the paper's "distributed" baseline (§3, §5.1). Its timestamp-based
// ordering mechanism underlies FastCast, WhiteBox, RamCast and others;
// with single-process groups those protocols all behave like Skeen's, so
// it is the canonical distributed genuine comparator.
//
// Protocol: the client sends m to every destination group. Each
// destination assigns m a local timestamp from a Lamport clock and sends
// it to the other destinations. When a destination knows all |m.dst|
// local timestamps, m's final timestamp is their maximum, and messages are
// delivered in final-timestamp order (ties broken by message id). A
// message is deliverable once its final timestamp is known and no other
// pending message could end up with a smaller final timestamp.
package skeen

import (
	"fmt"
	"sort"

	"flexcast/amcast"
)

// Config configures one Skeen engine.
type Config struct {
	// Group is the group this engine serves.
	Group amcast.GroupID
	// Groups is the full group set (used only for validation).
	Groups []amcast.GroupID
}

type pend struct {
	msg     amcast.Message
	hasMsg  bool
	localTS uint64
	hasTS   bool
	// ts holds the local timestamps received so far, keyed by group.
	ts map[amcast.GroupID]uint64
	// final caches the computed final timestamp once all are known.
	final    uint64
	hasFinal bool
}

// candTS is the lowest final timestamp m can still reach: the final
// timestamp when known, otherwise the local timestamp assigned here (the
// final is a maximum over all destinations, so it can only be larger).
func (p *pend) candTS() uint64 {
	if p.hasFinal {
		return p.final
	}
	return p.localTS
}

// Engine is the Skeen state machine for one group. It implements
// amcast.Engine. Not safe for concurrent use.
type Engine struct {
	g     amcast.GroupID
	clock uint64
	pend  map[amcast.MsgID]*pend
	// order is the set of pending ids; delivery scans it for the minimal
	// candidate (kept as a slice re-sorted on demand; pending sets are
	// small because messages drain quickly).
	delivered  map[amcast.MsgID]bool
	deliveries []amcast.Delivery
	seq        uint64
}

var _ amcast.Engine = (*Engine)(nil)

var _ amcast.BatchStepper = (*Engine)(nil)

// New builds a Skeen engine.
func New(cfg Config) (*Engine, error) {
	if cfg.Group == amcast.NoGroup {
		return nil, fmt.Errorf("skeen: missing group id")
	}
	return &Engine{
		g:         cfg.Group,
		pend:      make(map[amcast.MsgID]*pend),
		delivered: make(map[amcast.MsgID]bool),
	}, nil
}

// MustNew is New for known-good configurations; it panics on error.
func MustNew(cfg Config) *Engine {
	e, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return e
}

// Group implements amcast.Engine.
func (e *Engine) Group() amcast.GroupID { return e.g }

// TakeDeliveries implements amcast.Engine.
func (e *Engine) TakeDeliveries() []amcast.Delivery {
	d := e.deliveries
	e.deliveries = nil
	return d
}

// Pending reports the number of messages awaiting delivery (tests).
func (e *Engine) Pending() int { return len(e.pend) }

// OnEnvelope implements amcast.Engine.
func (e *Engine) OnEnvelope(env amcast.Envelope) []amcast.Output {
	var outs []amcast.Output
	e.step(env, &outs)
	return outs
}

// BatchStep implements amcast.BatchStepper — the batch fast path: every
// envelope's state updates (timestamp assignment, TS bookkeeping) apply
// in order, and the delivery drain — which re-sorts the pending set —
// runs once per batch instead of once per envelope. The delivery
// sequence is unchanged: messages deliver in final-timestamp order, and
// a message arriving later in the batch is Lamport-stamped above every
// final timestamp already deliverable, so it can never overtake one.
func (e *Engine) BatchStep(envs []amcast.Envelope) []amcast.Output {
	var outs []amcast.Output
	for _, env := range envs {
		e.apply(env, &outs)
	}
	e.drain()
	return outs
}

func (e *Engine) step(env amcast.Envelope, outs *[]amcast.Output) {
	e.apply(env, outs)
	e.drain()
}

// apply performs one envelope's state updates without the trailing
// delivery drain.
func (e *Engine) apply(env amcast.Envelope, outs *[]amcast.Output) {
	switch env.Kind {
	case amcast.KindRequest:
		e.onRequest(env, outs)
	case amcast.KindTS:
		e.onTS(env)
	}
}

func (e *Engine) onRequest(env amcast.Envelope, outs *[]amcast.Output) {
	m := env.Msg
	if !m.HasDst(e.g) || e.delivered[m.ID] {
		return
	}
	p := e.pending(m.ID)
	if p.hasMsg {
		return // duplicate request
	}
	p.msg = m
	p.hasMsg = true
	e.clock++
	p.localTS = e.clock
	p.hasTS = true
	p.ts[e.g] = p.localTS

	for _, d := range m.Dst {
		if d == e.g {
			continue
		}
		*outs = append(*outs, amcast.Output{
			To: amcast.GroupNode(d),
			Env: amcast.Envelope{
				Kind:   amcast.KindTS,
				From:   amcast.GroupNode(e.g),
				Msg:    m.Header(),
				TS:     p.localTS,
				TSFrom: e.g,
			},
		})
	}
	e.tryFinal(p)
}

func (e *Engine) onTS(env amcast.Envelope) {
	m := env.Msg
	if env.TS > e.clock {
		e.clock = env.TS
	}
	if !m.HasDst(e.g) || e.delivered[m.ID] {
		return
	}
	p := e.pending(m.ID)
	if !p.hasMsg {
		// The timestamp overtook the client request; remember the header so
		// the destination count is known.
		p.msg = m
	}
	p.ts[env.TSFrom] = env.TS
	e.tryFinal(p)
}

func (e *Engine) pending(id amcast.MsgID) *pend {
	p, ok := e.pend[id]
	if !ok {
		p = &pend{ts: make(map[amcast.GroupID]uint64)}
		e.pend[id] = p
	}
	return p
}

func (e *Engine) tryFinal(p *pend) {
	if p.hasFinal || !p.hasTS || len(p.ts) < len(p.msg.Dst) {
		return
	}
	var max uint64
	for _, ts := range p.ts {
		if ts > max {
			max = ts
		}
	}
	p.final = max
	p.hasFinal = true
}

// drain delivers every message whose final timestamp is known and minimal
// among all pending candidates. Messages without a local timestamp yet
// (timestamp overtook the request) do not gate delivery: their final
// timestamp will include this group's still-unassigned local timestamp,
// which will exceed the current clock, and the clock is never behind any
// delivered final timestamp.
func (e *Engine) drain() {
	for {
		ids := make([]amcast.MsgID, 0, len(e.pend))
		for id, p := range e.pend {
			if p.hasTS {
				ids = append(ids, id)
			}
		}
		if len(ids) == 0 {
			return
		}
		sort.Slice(ids, func(i, j int) bool {
			pi, pj := e.pend[ids[i]], e.pend[ids[j]]
			if pi.candTS() != pj.candTS() {
				return pi.candTS() < pj.candTS()
			}
			return ids[i] < ids[j]
		})
		head := e.pend[ids[0]]
		if !head.hasFinal {
			return
		}
		e.deliver(ids[0], head)
	}
}

func (e *Engine) deliver(id amcast.MsgID, p *pend) {
	delete(e.pend, id)
	e.delivered[id] = true
	e.deliveries = append(e.deliveries, amcast.Delivery{Group: e.g, Seq: e.seq, Msg: p.msg})
	e.seq++
}
