package skeen_test

import (
	"testing"

	"flexcast/amcast"
	"flexcast/internal/prototest"
	"flexcast/internal/skeen"
)

// TestBatchStepEquivalence checks the amcast.BatchStepper contract:
// draining a group's input sequence in arbitrary chunks produces exactly
// the outputs and deliveries of the per-envelope path.
func TestBatchStepEquivalence(t *testing.T) {
	groups := []amcast.GroupID{1, 2, 3, 4, 5}
	for seed := int64(0); seed < 4; seed++ {
		prototest.RunBatchEquivalence(t, prototest.RandomConfig{
			Groups:   groups,
			Clients:  3,
			Messages: 20,
			Route: func(m amcast.Message) []amcast.NodeID {
				nodes := make([]amcast.NodeID, len(m.Dst))
				for i, g := range m.Dst {
					nodes[i] = amcast.GroupNode(g)
				}
				return nodes
			},
			Factory: func(g amcast.GroupID) amcast.Engine {
				return skeen.MustNew(skeen.Config{Group: g, Groups: groups})
			},
			Seed: seed*23 + 3,
		})
	}
}

// TestPriorityDrainSafety runs the chunked executions with the receiver-
// side control-priority reordering (runtime.Node.take's permutation):
// Skeen's protocol orders by timestamps exchanged in TS envelopes —
// exactly the control class the drain promotes — so the full spec must
// survive the reordering.
func TestPriorityDrainSafety(t *testing.T) {
	groups := []amcast.GroupID{1, 2, 3, 4, 5}
	for seed := int64(0); seed < 2; seed++ {
		prototest.RunChunkedSafety(t, prototest.RandomConfig{
			Groups:   groups,
			Clients:  3,
			Messages: 20,
			Route: func(m amcast.Message) []amcast.NodeID {
				nodes := make([]amcast.NodeID, len(m.Dst))
				for i, g := range m.Dst {
					nodes[i] = amcast.GroupNode(g)
				}
				return nodes
			},
			Factory: func(g amcast.GroupID) amcast.Engine {
				return skeen.MustNew(skeen.Config{Group: g, Groups: groups})
			},
			Seed:          seed*31 + 7,
			PriorityDrain: true,
		}, true)
	}
}
