package skeen_test

import (
	"fmt"
	"reflect"
	"testing"

	"flexcast/amcast"
	"flexcast/internal/prototest"
	"flexcast/internal/skeen"
)

const (
	gA amcast.GroupID = 1
	gB amcast.GroupID = 2
	gC amcast.GroupID = 3
)

var groupsABC = []amcast.GroupID{gA, gB, gC}

func router(t *testing.T) *prototest.Router {
	t.Helper()
	return prototest.NewRouter(t, groupsABC, func(g amcast.GroupID) amcast.Engine {
		return skeen.MustNew(skeen.Config{Group: g, Groups: groupsABC})
	})
}

// multicast injects the request at every destination, as Skeen's clients
// do.
func multicast(r *prototest.Router, m amcast.Message) {
	for _, g := range m.Dst {
		r.Multicast(g, m)
	}
}

func ids(vs ...uint64) []amcast.MsgID {
	out := make([]amcast.MsgID, len(vs))
	for i, v := range vs {
		out[i] = amcast.MsgID(v)
	}
	return out
}

func TestLocalMessageDeliversImmediately(t *testing.T) {
	r := router(t)
	multicast(r, prototest.Msg(1, gB))
	if got := r.Seq(gB); !reflect.DeepEqual(got, ids(1)) {
		t.Fatalf("B delivered %v", got)
	}
	if r.InFlight() != 0 {
		t.Fatal("local message produced timestamp traffic")
	}
}

func TestGlobalMessageNeedsAllTimestamps(t *testing.T) {
	r := router(t)
	multicast(r, prototest.Msg(1, gA, gB))
	// Both groups assigned local timestamps and sent them; neither
	// delivers before receiving the other's timestamp.
	if len(r.Seq(gA))+len(r.Seq(gB)) != 0 {
		t.Fatal("delivered before timestamp exchange completed")
	}
	r.Step(gA, gB, amcast.KindTS, 1)
	if got := r.Seq(gB); !reflect.DeepEqual(got, ids(1)) {
		t.Fatalf("B after A's ts: %v", got)
	}
	r.Step(gB, gA, amcast.KindTS, 1)
	if got := r.Seq(gA); !reflect.DeepEqual(got, ids(1)) {
		t.Fatalf("A after B's ts: %v", got)
	}
}

// TestPendingLowerTimestampBlocks replays the classic ISIS hazard: a
// message with a known final timestamp must wait while another pending
// message could still obtain a smaller final timestamp.
func TestPendingLowerTimestampBlocks(t *testing.T) {
	r := router(t)
	m1 := prototest.Msg(1, gA, gB)
	m2 := prototest.Msg(2, gA, gB)
	// A sees m1 then m2 (local ts 1, 2); B sees m2 then m1 (local ts 1, 2).
	r.Multicast(gA, m1)
	r.Multicast(gA, m2)
	r.Multicast(gB, m2)
	r.Multicast(gB, m1)
	// B receives A's ts for m1 (1): final(m1) = max(1, 2) = 2. But m2 is
	// pending at B with local ts 1, so m2 could still finalize at 1 or 2
	// and (ts, id) order must be respected: B cannot deliver m1 yet.
	r.Step(gA, gB, amcast.KindTS, 1)
	if len(r.Seq(gB)) != 0 {
		t.Fatalf("B delivered %v before m2's final timestamp was known", r.Seq(gB))
	}
	r.Drain()
	if err := r.Recorder.CheckAll(true); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r.Seq(gA), r.Seq(gB)) {
		t.Fatalf("A %v and B %v disagree", r.Seq(gA), r.Seq(gB))
	}
}

func TestTimestampBeforeRequest(t *testing.T) {
	r := router(t)
	m := prototest.Msg(1, gA, gB)
	// Only A has the request; A's timestamp reaches B before B's request.
	r.Multicast(gA, m)
	r.Step(gA, gB, amcast.KindTS, 1)
	if len(r.Seq(gB)) != 0 {
		t.Fatal("B delivered from a timestamp alone")
	}
	r.Multicast(gB, m)
	r.Drain()
	if !reflect.DeepEqual(r.Seq(gB), ids(1)) {
		t.Fatalf("B delivered %v", r.Seq(gB))
	}
}

func TestDuplicateRequestIgnored(t *testing.T) {
	r := router(t)
	m := prototest.Msg(1, gA)
	r.Multicast(gA, m)
	r.Multicast(gA, m)
	if got := r.Seq(gA); !reflect.DeepEqual(got, ids(1)) {
		t.Fatalf("A delivered %v", got)
	}
}

func TestMisaddressedEnvelopesIgnored(t *testing.T) {
	r := router(t)
	multicast(r, prototest.Msg(1, gA, gB)) // C not a destination
	r.Drain()
	if len(r.Seq(gC)) != 0 {
		t.Fatal("C delivered a message not addressed to it")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := skeen.New(skeen.Config{}); err == nil {
		t.Fatal("missing group accepted")
	}
}

func TestRandomWorkloadProperties(t *testing.T) {
	for _, n := range []int{2, 4, 6} {
		for seed := int64(0); seed < 6; seed++ {
			n, seed := n, seed
			t.Run(fmt.Sprintf("groups=%d/seed=%d", n, seed), func(t *testing.T) {
				groups := make([]amcast.GroupID, n)
				for i := range groups {
					groups[i] = amcast.GroupID(i + 1)
				}
				rec := prototest.RunRandom(t, prototest.RandomConfig{
					Groups:   groups,
					Clients:  4,
					Messages: 25,
					Route: func(m amcast.Message) []amcast.NodeID {
						nodes := make([]amcast.NodeID, len(m.Dst))
						for i, g := range m.Dst {
							nodes[i] = amcast.GroupNode(g)
						}
						return nodes
					},
					Factory: func(g amcast.GroupID) amcast.Engine {
						return skeen.MustNew(skeen.Config{Group: g, Groups: groups})
					},
					Seed:   seed*17 + int64(n),
					Jitter: 500,
				})
				if err := rec.CheckAll(true); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

// TestRandomWorkloadWithoutFIFO checks that Skeen's ordering survives
// arbitrary per-link reordering — unlike FlexCast it does not rely on
// FIFO channels for its timestamps.
func TestRandomWorkloadWithoutFIFO(t *testing.T) {
	groups := []amcast.GroupID{1, 2, 3, 4}
	rec := prototest.RunRandomNoFIFO(t, prototest.RandomConfig{
		Groups:   groups,
		Clients:  3,
		Messages: 30,
		Route: func(m amcast.Message) []amcast.NodeID {
			nodes := make([]amcast.NodeID, len(m.Dst))
			for i, g := range m.Dst {
				nodes[i] = amcast.GroupNode(g)
			}
			return nodes
		},
		Factory: func(g amcast.GroupID) amcast.Engine {
			return skeen.MustNew(skeen.Config{Group: g, Groups: groups})
		},
		Seed:   5,
		Jitter: 2000,
	})
	if err := rec.CheckAll(true); err != nil {
		t.Fatal(err)
	}
}
