package skeen_test

import (
	"testing"

	"flexcast/amcast"
	"flexcast/internal/prototest"
	"flexcast/internal/skeen"
)

// TestSnapshotBinaryRoundTrip audits the Skeen binary snapshot codec
// over mid-run state: marshal → decode → restore → re-marshal must be
// byte-identical.
func TestSnapshotBinaryRoundTrip(t *testing.T) {
	groups := []amcast.GroupID{1, 2, 3, 4}
	route := func(m amcast.Message) []amcast.NodeID {
		nodes := make([]amcast.NodeID, len(m.Dst))
		for i, g := range m.Dst {
			nodes[i] = amcast.GroupNode(g)
		}
		return nodes
	}
	factory := func(g amcast.GroupID) amcast.Engine {
		return skeen.MustNew(skeen.Config{Group: g, Groups: groups})
	}
	for seed := int64(1); seed <= 4; seed++ {
		prototest.RunRandom(t, prototest.RandomConfig{
			Groups:   groups,
			Clients:  3,
			Messages: 15,
			Route:    route,
			Factory:  factory,
			Seed:     seed,
			Jitter:   3000,
			OnEngines: func(engines map[amcast.GroupID]amcast.Engine) {
				for g, eng := range engines {
					fresh := skeen.MustNew(skeen.Config{Group: g, Groups: groups})
					prototest.CheckBinarySnapshot(t, eng.(amcast.SnapshotEngine), fresh, skeen.UnmarshalSnapshot)
				}
			},
		})
	}
}
