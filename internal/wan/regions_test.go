package wan

import (
	"reflect"
	"testing"

	"flexcast/amcast"
)

func TestMatrixSymmetricAndPositive(t *testing.T) {
	for _, a := range Groups() {
		for _, b := range Groups() {
			ab, ba := RTTMicros(a, b), RTTMicros(b, a)
			if ab != ba {
				t.Errorf("RTT(%d,%d)=%d != RTT(%d,%d)=%d", a, b, ab, b, a, ba)
			}
			if ab <= 0 {
				t.Errorf("RTT(%d,%d)=%d not positive", a, b, ab)
			}
			if a != b && ab < RTTMicros(a, a) {
				t.Errorf("inter-region RTT(%d,%d) below intra-region RTT", a, b)
			}
		}
	}
}

func TestOneWayIsHalfRTT(t *testing.T) {
	if got, want := OneWayMicros(1, 2), RTTMicros(1, 2)/2; got != want {
		t.Fatalf("OneWayMicros = %d, want %d", got, want)
	}
}

func TestContinentalClustering(t *testing.T) {
	america := []amcast.GroupID{1, 2, 3, 4, 5}
	europe := []amcast.GroupID{6, 7, 8}
	asia := []amcast.GroupID{9, 10, 11, 12}
	maxIntra := func(set []amcast.GroupID) int64 {
		var max int64
		for _, a := range set {
			for _, b := range set {
				if a != b && RTTMicros(a, b) > max {
					max = RTTMicros(a, b)
				}
			}
		}
		return max
	}
	minInter := func(s1, s2 []amcast.GroupID) int64 {
		min := int64(1 << 62)
		for _, a := range s1 {
			for _, b := range s2 {
				if RTTMicros(a, b) < min {
					min = RTTMicros(a, b)
				}
			}
		}
		return min
	}
	// Every continental cluster is internally tighter than its distance to
	// any other continent — the structural property the paper's locality
	// analysis relies on.
	if maxIntra(europe) >= minInter(europe, america) {
		t.Error("Europe not tighter than Europe-America")
	}
	if maxIntra(asia) >= minInter(asia, europe) {
		t.Error("Asia not tighter than Asia-Europe")
	}
	if maxIntra(america) >= minInter(america, asia) {
		t.Error("America not tighter than America-Asia")
	}
}

func TestO1MatchesPaperOrder(t *testing.T) {
	// The paper's Figure 8(a) lists FlexCast's nodes in O1 rank order:
	// 8 7 6 5 2 1 3 4 9 10 11 12.
	want := []amcast.GroupID{8, 7, 6, 5, 2, 1, 3, 4, 9, 10, 11, 12}
	if got := O1().Order(); !reflect.DeepEqual(got, want) {
		t.Fatalf("O1 order = %v, want %v", got, want)
	}
}

func TestO2StartsAtGroup1(t *testing.T) {
	order := O2().Order()
	if order[0] != 1 {
		t.Fatalf("O2 starts at %d, want 1", order[0])
	}
	if len(order) != NumRegions {
		t.Fatalf("O2 has %d groups, want %d", len(order), NumRegions)
	}
}

func TestNearestOrder(t *testing.T) {
	for _, home := range Groups() {
		order := NearestOrder(home)
		if len(order) != NumRegions-1 {
			t.Fatalf("NearestOrder(%d) has %d entries", home, len(order))
		}
		for i := 0; i+1 < len(order); i++ {
			if RTTMicros(home, order[i]) > RTTMicros(home, order[i+1]) {
				t.Errorf("NearestOrder(%d) not sorted at %d", home, i)
			}
		}
		for _, g := range order {
			if g == home {
				t.Errorf("NearestOrder(%d) contains home", home)
			}
		}
	}
}

func TestNearestNeighborsMatchGeography(t *testing.T) {
	// Spot checks that drive the gTPC-C locality pattern.
	wantNearest := map[amcast.GroupID]amcast.GroupID{
		1:  2,  // Ohio -> Virginia
		3:  4,  // N. California -> Oregon
		6:  7,  // London -> Paris
		7:  8,  // Paris -> Frankfurt
		9:  10, // Tokyo -> Seoul
		12: 11, // Sydney -> Singapore
	}
	for home, want := range wantNearest {
		if got := NearestOrder(home)[0]; got != want {
			t.Errorf("nearest(%d) = %d, want %d", home, got, want)
		}
	}
}

func TestTreesAreValidAndMatchNarrative(t *testing.T) {
	t1, t2, t3 := T1(), T2(), T3()
	for name, tr := range map[string]interface{ Len() int }{"T1": t1, "T2": t2, "T3": t3} {
		if tr.Len() != NumRegions {
			t.Errorf("%s has %d groups, want %d", name, tr.Len(), NumRegions)
		}
	}
	// T1: America subtree rooted at 5, Asia subtree at 9 (paper §5.8).
	if !t1.InSubtree(5, 1) || !t1.InSubtree(5, 4) || !t1.InSubtree(9, 12) {
		t.Error("T1 subtree structure wrong")
	}
	if t1.Root() != 8 {
		t.Errorf("T1 root = %d, want 8", t1.Root())
	}
	// T2 has more inner nodes than T1.
	if len(t2.InnerNodes()) <= len(t1.InnerNodes()) {
		t.Errorf("T2 inner nodes (%d) not more than T1 (%d)",
			len(t2.InnerNodes()), len(t1.InnerNodes()))
	}
	// T3 is a star: exactly one inner node, the root 6.
	if inner := t3.InnerNodes(); len(inner) != 1 || inner[0] != 6 {
		t.Errorf("T3 inner nodes = %v, want [6]", inner)
	}
	if t3.Depth(1) != 1 {
		t.Errorf("T3 depth(1) = %d, want 1", t3.Depth(1))
	}
}

func TestRegionName(t *testing.T) {
	if got := RegionName(8); got != "eu-central-1" {
		t.Errorf("RegionName(8) = %q", got)
	}
	if got := RegionName(99); got != "region(99)" {
		t.Errorf("RegionName(99) = %q", got)
	}
}
