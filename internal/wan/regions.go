// Package wan models the emulated wide-area network of the paper's
// evaluation (§5.2): 12 AWS regions, one group per region, with
// inter-region round-trip latencies.
//
// The paper uses RTTs measured by cloudping.co; those measurements are not
// reproduced in the paper, so this package substitutes a synthetic matrix
// built from well-known AWS inter-region latencies. The group numbering is
// chosen so that the paper's construction rules reproduce its overlays
// exactly: the greedy nearest-neighbour chain started at group 8 yields
// O1 = [8 7 6 5 2 1 3 4 9 10 11 12], which is the node order shown on the
// x-axis of the paper's Figure 8(a).
//
// Continental clusters (matching the paper's narrative that groups 1-5 are
// America, 6-8 Europe, 9-12 Asia-Pacific):
//
//	1 us-east-2 (Ohio)        5 ca-central-1 (Montreal)
//	2 us-east-1 (N. Virginia) 6 eu-west-2 (London)
//	3 us-west-1 (N. Calif.)   7 eu-west-3 (Paris)
//	4 us-west-2 (Oregon)      8 eu-central-1 (Frankfurt)
//	9 ap-northeast-1 (Tokyo)  11 ap-southeast-1 (Singapore)
//	10 ap-northeast-2 (Seoul) 12 ap-southeast-2 (Sydney)
package wan

import (
	"fmt"
	"sort"

	"flexcast/amcast"
	"flexcast/internal/overlay"
)

// NumRegions is the number of regions/groups in the paper's deployment.
const NumRegions = 12

// Region names indexed by group id (index 0 unused).
var regionNames = [NumRegions + 1]string{
	"",               // group ids start at 1
	"us-east-2",      // 1  Ohio
	"us-east-1",      // 2  N. Virginia
	"us-west-1",      // 3  N. California
	"us-west-2",      // 4  Oregon
	"ca-central-1",   // 5  Montreal
	"eu-west-2",      // 6  London
	"eu-west-3",      // 7  Paris
	"eu-central-1",   // 8  Frankfurt
	"ap-northeast-1", // 9  Tokyo
	"ap-northeast-2", // 10 Seoul
	"ap-southeast-1", // 11 Singapore
	"ap-southeast-2", // 12 Sydney
}

// RegionName returns the AWS region name for a group.
func RegionName(g amcast.GroupID) string {
	if g < 1 || g > NumRegions {
		return fmt.Sprintf("region(%d)", g)
	}
	return regionNames[g]
}

// rttMS[i][j] is the round-trip time in milliseconds between regions i and
// j (1-based). Only the upper triangle is specified; the matrix is
// symmetrized at init. Values approximate steady-state AWS inter-region
// RTTs.
var rttMS = func() [NumRegions + 1][NumRegions + 1]int64 {
	var m [NumRegions + 1][NumRegions + 1]int64
	upper := map[[2]int]int64{
		{1, 2}: 12, {1, 3}: 52, {1, 4}: 71, {1, 5}: 17, {1, 6}: 86,
		{1, 7}: 92, {1, 8}: 98, {1, 9}: 155, {1, 10}: 175, {1, 11}: 215, {1, 12}: 195,
		{2, 3}: 61, {2, 4}: 77, {2, 5}: 16, {2, 6}: 76, {2, 7}: 80,
		{2, 8}: 88, {2, 9}: 167, {2, 10}: 185, {2, 11}: 232, {2, 12}: 204,
		{3, 4}: 22, {3, 5}: 74, {3, 6}: 137, {3, 7}: 142, {3, 8}: 147,
		{3, 9}: 107, {3, 10}: 135, {3, 11}: 170, {3, 12}: 139,
		{4, 5}: 60, {4, 6}: 130, {4, 7}: 136, {4, 8}: 141, {4, 9}: 97,
		{4, 10}: 126, {4, 11}: 161, {4, 12}: 138,
		{5, 6}: 73, {5, 7}: 79, {5, 8}: 86, {5, 9}: 144, {5, 10}: 168,
		{5, 11}: 208, {5, 12}: 197,
		{6, 7}: 9, {6, 8}: 14, {6, 9}: 210, {6, 10}: 230, {6, 11}: 170, {6, 12}: 263,
		{7, 8}: 8, {7, 9}: 218, {7, 10}: 238, {7, 11}: 160, {7, 12}: 270,
		{8, 9}: 225, {8, 10}: 245, {8, 11}: 155, {8, 12}: 278,
		{9, 10}: 35, {9, 11}: 70, {9, 12}: 104,
		{10, 11}: 75, {10, 12}: 136,
		{11, 12}: 92,
	}
	for k, v := range upper {
		m[k[0]][k[1]] = v
		m[k[1]][k[0]] = v
	}
	// Intra-region RTT: clients talk to their home group over the local
	// network.
	for i := 1; i <= NumRegions; i++ {
		m[i][i] = 1
	}
	return m
}()

// LocalRTTMicros is the round-trip time between a client and a group in
// the same region, in microseconds.
const LocalRTTMicros int64 = 1000

// RTTMicros returns the round-trip time between two regions in
// microseconds.
func RTTMicros(a, b amcast.GroupID) int64 {
	if a < 1 || a > NumRegions || b < 1 || b > NumRegions {
		panic(fmt.Sprintf("wan: region out of range: %d,%d", a, b))
	}
	return rttMS[a][b] * 1000
}

// OneWayMicros returns the one-way latency between two regions in
// microseconds (half the RTT).
func OneWayMicros(a, b amcast.GroupID) int64 { return RTTMicros(a, b) / 2 }

// Groups returns all group ids 1..NumRegions.
func Groups() []amcast.GroupID {
	gs := make([]amcast.GroupID, NumRegions)
	for i := range gs {
		gs[i] = amcast.GroupID(i + 1)
	}
	return gs
}

// NearestOrder returns the other regions sorted by ascending RTT from
// home; the gTPC-C locality rule walks this list (§5.3). Ties break toward
// the smaller group id.
func NearestOrder(home amcast.GroupID) []amcast.GroupID {
	others := make([]amcast.GroupID, 0, NumRegions-1)
	for _, g := range Groups() {
		if g != home {
			others = append(others, g)
		}
	}
	sort.SliceStable(others, func(i, j int) bool {
		di, dj := RTTMicros(home, others[i]), RTTMicros(home, others[j])
		if di != dj {
			return di < dj
		}
		return others[i] < others[j]
	})
	return others
}

// O1 returns the paper's FlexCast overlay O1: the greedy nearest-neighbour
// chain started at the central European group 8 (Frankfurt). With this
// package's matrix the result is [8 7 6 5 2 1 3 4 9 10 11 12].
func O1() *overlay.CDAG {
	return chainFrom(8)
}

// O2 returns the paper's FlexCast overlay O2: the greedy chain started at
// the left-most group 1 (Ohio).
func O2() *overlay.CDAG {
	return chainFrom(1)
}

func chainFrom(start amcast.GroupID) *overlay.CDAG {
	chain, err := overlay.GreedyChain(start, Groups(), RTTMicros)
	if err != nil {
		panic(err)
	}
	return overlay.MustCDAG(chain)
}

// T1 returns hierarchical tree T1 (3 levels, inner nodes 8, 5, 9): the
// European root with the America subtree rooted at group 5 (Montreal, the
// American region closest to Europe) and the Asia subtree rooted at group
// 9 (Tokyo). This reconstructs the paper's description of T1, whose
// highest-overhead groups are the continental subtree roots 5 and 9
// (§5.8).
func T1() *overlay.Tree {
	return overlay.MustTree(8, map[amcast.GroupID][]amcast.GroupID{
		8: {7, 5, 9},
		7: {6},
		5: {1, 2, 3, 4},
		9: {10, 11, 12},
	})
}

// T2 returns hierarchical tree T2 (5 inner nodes: 7, 5, 2, 9, 11). More
// inner nodes spread the communication overhead across more groups at the
// cost of extra forwarding steps (§5.4).
func T2() *overlay.Tree {
	return overlay.MustTree(7, map[amcast.GroupID][]amcast.GroupID{
		7:  {8, 6, 5, 9},
		5:  {2},
		2:  {1, 3, 4},
		9:  {11},
		11: {10, 12},
	})
}

// T3 returns hierarchical tree T3: a star rooted at group 6 (London). The
// single inner node concentrates the entire overhead on the root, which
// also becomes a latency bottleneck — the paper reports 56% overhead at
// T3's root, independent of the locality rate (§5.8, Table 4).
func T3() *overlay.Tree {
	children := make([]amcast.GroupID, 0, NumRegions-1)
	for _, g := range Groups() {
		if g != 6 {
			children = append(children, g)
		}
	}
	return overlay.MustTree(6, map[amcast.GroupID][]amcast.GroupID{6: children})
}
