package transport

import (
	"encoding/binary"
	"net"
	"sync"
	"testing"
	"time"

	"flexcast/amcast"
	"flexcast/internal/codec"
)

// rxNode starts a TCPNode on an ephemeral port that records every
// dispatched envelope.
type rxNode struct {
	node *TCPNode
	mu   sync.Mutex
	got  []amcast.Envelope
}

func startRxNode(t *testing.T, id amcast.NodeID, book AddrBook) *rxNode {
	t.Helper()
	r := &rxNode{}
	n, err := NewTCPNode(id, book, func(env amcast.Envelope) {
		r.mu.Lock()
		r.got = append(r.got, env)
		r.mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	r.node = n
	return r
}

func (r *rxNode) count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.got)
}

func testEnv(id uint64) amcast.Envelope {
	return amcast.Envelope{
		Kind: amcast.KindRequest,
		From: amcast.ClientNode(0),
		Msg: amcast.Message{
			ID:      amcast.MsgID(id),
			Sender:  amcast.ClientNode(0),
			Dst:     []amcast.GroupID{1},
			Payload: []byte("ping"),
		},
	}
}

// reservePort grabs an ephemeral loopback port and releases it so a
// later listener can bind the same address.
func reservePort(t *testing.T) string {
	t.Helper()
	ln, err := net_Listen()
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// TestReconnectAfterPeerRestart covers the Send retry path: a peer
// closes (crash), restarts on the same address, and the cached broken
// connection is replaced by a fresh dial.
func TestReconnectAfterPeerRestart(t *testing.T) {
	const (
		a amcast.NodeID = 1
		b amcast.NodeID = 2
	)
	book := AddrBook{a: "127.0.0.1:0", b: reservePort(t)}
	rb := startRxNode(t, b, book)
	book[a] = "127.0.0.1:0"
	ra := startRxNode(t, a, book)
	defer ra.node.Close()

	if err := ra.node.Send(b, testEnv(1)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 2*time.Second, func() bool { return rb.count() == 1 })

	// Restart b on the same address; a's cached connection is now dead.
	rb.node.Close()
	rb2 := startRxNode(t, b, book)
	defer rb2.node.Close()

	// A write into the dead connection may succeed (kernel buffer)
	// before the peer's RST is observed, so retry until the message
	// lands: this is exactly what the protocols' runtimes do on the
	// assumption of reliable channels.
	waitFor(t, 5*time.Second, func() bool {
		_ = ra.node.Send(b, testEnv(2))
		return rb2.count() >= 1
	})
}

// TestPartialFrameReads covers the framing decoder against a sender that
// trickles a frame byte by byte: the node must reassemble it and must
// not dispatch anything for a frame that is cut short.
func TestPartialFrameReads(t *testing.T) {
	const b amcast.NodeID = 2
	book := AddrBook{b: "127.0.0.1:0"}
	rb := startRxNode(t, b, book)
	defer rb.node.Close()

	conn, err := net.Dial("tcp", rb.node.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	payload := codec.Marshal(testEnv(7))
	var hdr [binary.MaxVarintLen64]byte
	hn := binary.PutUvarint(hdr[:], uint64(len(payload)))
	frame := append(hdr[:hn:hn], payload...)
	for _, by := range frame {
		if _, err := conn.Write([]byte{by}); err != nil {
			t.Fatal(err)
		}
		time.Sleep(time.Millisecond)
	}
	waitFor(t, 2*time.Second, func() bool { return rb.count() == 1 })

	// A truncated second frame (header promises more bytes than sent,
	// then the connection closes) must not dispatch an envelope.
	if _, err := conn.Write(frame[:len(frame)-3]); err != nil {
		t.Fatal(err)
	}
	conn.Close()
	time.Sleep(50 * time.Millisecond)
	if got := rb.count(); got != 1 {
		t.Fatalf("truncated frame dispatched: %d envelopes, want 1", got)
	}
}

// TestOversizedFrameRejected covers the maxFrame guard: a header
// declaring a frame beyond the limit must terminate the connection
// without dispatching or allocating the claimed size.
func TestOversizedFrameRejected(t *testing.T) {
	const b amcast.NodeID = 2
	book := AddrBook{b: "127.0.0.1:0"}
	rb := startRxNode(t, b, book)
	defer rb.node.Close()

	conn, err := net.Dial("tcp", rb.node.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	var hdr [binary.MaxVarintLen64]byte
	hn := binary.PutUvarint(hdr[:], uint64(maxFrame)+1)
	if _, err := conn.Write(hdr[:hn]); err != nil {
		t.Fatal(err)
	}
	// The reader must drop the connection: our next read sees EOF/reset.
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("connection still open after oversized frame header")
	}
	if got := rb.count(); got != 0 {
		t.Fatalf("oversized frame dispatched %d envelopes", got)
	}

	// The node itself stays healthy: a well-formed frame on a fresh
	// connection is still accepted.
	conn2, err := net.Dial("tcp", rb.node.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	payload := codec.Marshal(testEnv(9))
	hn = binary.PutUvarint(hdr[:], uint64(len(payload)))
	if _, err := conn2.Write(append(hdr[:hn:hn], payload...)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 2*time.Second, func() bool { return rb.count() == 1 })
}
