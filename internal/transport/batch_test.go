package transport

import (
	"testing"
	"time"

	"flexcast/amcast"
)

// TestTCPBatchFrameRoundTrip sends batches and single envelopes over a
// real TCP connection and checks that batch frames arrive as one
// dispatch unit, interleaved in order with single frames.
func TestTCPBatchFrameRoundTrip(t *testing.T) {
	a := amcast.GroupNode(1)
	b := amcast.GroupNode(2)
	book := AddrBook{a: "127.0.0.1:0", b: "127.0.0.1:0"}

	got := make(chan []amcast.Envelope, 16)
	nb, err := NewTCPBatchNode(b, book, func(envs []amcast.Envelope) {
		got <- envs
	})
	if err != nil {
		t.Fatal(err)
	}
	defer nb.Close()
	book[b] = nb.Addr()

	na, err := NewTCPBatchNode(a, book, func(envs []amcast.Envelope) {})
	if err != nil {
		t.Fatal(err)
	}
	defer na.Close()

	mkEnv := func(seq uint64) amcast.Envelope {
		return amcast.Envelope{
			Kind: amcast.KindRequest,
			From: a,
			Msg: amcast.Message{
				ID: amcast.NewMsgID(0, seq), Sender: amcast.ClientNode(0),
				Dst: []amcast.GroupID{2}, Payload: []byte{byte(seq)},
			},
		}
	}
	batch := []amcast.Envelope{mkEnv(1), mkEnv(2), mkEnv(3)}
	if err := na.SendBatch(b, batch); err != nil {
		t.Fatal(err)
	}
	if err := na.Send(b, mkEnv(4)); err != nil {
		t.Fatal(err)
	}
	if err := na.SendBatch(b, []amcast.Envelope{mkEnv(5)}); err != nil {
		t.Fatal(err)
	}

	want := [][]uint64{{1, 2, 3}, {4}, {5}}
	for i, w := range want {
		select {
		case envs := <-got:
			if len(envs) != len(w) {
				t.Fatalf("dispatch %d: got %d envelopes, want %d", i, len(envs), len(w))
			}
			for j, env := range envs {
				if env.Msg.ID.Seq() != w[j] {
					t.Fatalf("dispatch %d envelope %d: seq %d, want %d", i, j, env.Msg.ID.Seq(), w[j])
				}
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("timed out waiting for dispatch %d", i)
		}
	}
}

// TestInMemBatchDispatch checks that SendBatch hands the whole batch to
// the handler as one unit and preserves per-pair FIFO with Send.
func TestInMemBatchDispatch(t *testing.T) {
	net := NewInMemNet()
	defer net.Close()

	got := make(chan []amcast.Envelope, 16)
	if err := net.AddBatchHandler(amcast.GroupNode(1), func(envs []amcast.Envelope) {
		got <- envs
	}); err != nil {
		t.Fatal(err)
	}

	env := func(seq uint64) amcast.Envelope {
		return amcast.Envelope{Kind: amcast.KindRequest, From: amcast.ClientNode(0),
			Msg: amcast.Message{ID: amcast.NewMsgID(0, seq), Dst: []amcast.GroupID{1}}}
	}
	net.SendBatch(amcast.ClientNode(0), amcast.GroupNode(1), []amcast.Envelope{env(1), env(2)})
	net.Send(amcast.ClientNode(0), amcast.GroupNode(1), env(3))

	want := [][]uint64{{1, 2}, {3}}
	for i, w := range want {
		select {
		case envs := <-got:
			if len(envs) != len(w) {
				t.Fatalf("dispatch %d: got %d envelopes, want %d", i, len(envs), len(w))
			}
			for j, e := range envs {
				if e.Msg.ID.Seq() != w[j] {
					t.Fatalf("dispatch %d envelope %d: seq %d, want %d", i, j, e.Msg.ID.Seq(), w[j])
				}
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("timed out waiting for dispatch %d", i)
		}
	}
}
