package transport

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"flexcast/amcast"
	"flexcast/internal/core"
	"flexcast/internal/overlay"
	"flexcast/internal/skeen"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("condition not reached in time")
}

// deliverLog collects deliveries thread-safely.
type deliverLog struct {
	mu   sync.Mutex
	seqs map[amcast.GroupID][]amcast.MsgID
}

func newDeliverLog() *deliverLog {
	return &deliverLog{seqs: make(map[amcast.GroupID][]amcast.MsgID)}
}

func (l *deliverLog) add(d amcast.Delivery) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.seqs[d.Group] = append(l.seqs[d.Group], d.Msg.ID)
}

func (l *deliverLog) seq(g amcast.GroupID) []amcast.MsgID {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]amcast.MsgID(nil), l.seqs[g]...)
}

func (l *deliverLog) total() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := 0
	for _, s := range l.seqs {
		n += len(s)
	}
	return n
}

func msg(id uint64, dst ...amcast.GroupID) amcast.Message {
	return amcast.Message{
		ID:     amcast.MsgID(id),
		Sender: amcast.ClientNode(0),
		Dst:    amcast.NormalizeDst(dst),
	}
}

func TestInMemFlexCastThreeGroups(t *testing.T) {
	ov := overlay.MustCDAG([]amcast.GroupID{1, 2, 3})
	net := NewInMemNet()
	defer net.Close()
	log := newDeliverLog()
	for _, g := range ov.Order() {
		eng := core.MustNew(core.Config{Group: g, Overlay: ov})
		if err := net.AddEngine(eng, log.add); err != nil {
			t.Fatal(err)
		}
	}
	var replies sync.Map
	if err := net.AddHandler(amcast.ClientNode(0), func(env amcast.Envelope) {
		if env.Kind == amcast.KindReply {
			replies.Store(fmt.Sprintf("%s-%d", env.Msg.ID, env.From), true)
		}
	}); err != nil {
		t.Fatal(err)
	}

	for i := uint64(1); i <= 5; i++ {
		m := msg(i, 1, 2, 3)
		net.Send(amcast.ClientNode(0), amcast.GroupNode(ov.Lca(m.Dst)),
			amcast.Envelope{Kind: amcast.KindRequest, From: m.Sender, Msg: m})
	}
	waitFor(t, 5*time.Second, func() bool { return log.total() == 15 })

	want := []amcast.MsgID{1, 2, 3, 4, 5}
	for _, g := range ov.Order() {
		if got := log.seq(g); !reflect.DeepEqual(got, want) {
			t.Fatalf("group %d delivered %v, want %v", g, got, want)
		}
	}
	// Every destination replied to the client.
	waitFor(t, 5*time.Second, func() bool {
		n := 0
		replies.Range(func(_, _ interface{}) bool { n++; return true })
		return n == 15
	})
}

func TestInMemDuplicateRegistration(t *testing.T) {
	net := NewInMemNet()
	defer net.Close()
	if err := net.AddHandler(amcast.ClientNode(0), func(amcast.Envelope) {}); err != nil {
		t.Fatal(err)
	}
	if err := net.AddHandler(amcast.ClientNode(0), func(amcast.Envelope) {}); err == nil {
		t.Fatal("duplicate registration accepted")
	}
}

func TestInMemSendToUnknownNodeDropped(t *testing.T) {
	net := NewInMemNet()
	defer net.Close()
	// Must not panic or block.
	net.Send(amcast.ClientNode(0), amcast.GroupNode(9), amcast.Envelope{Kind: amcast.KindFwd})
}

func TestInMemCloseIdempotent(t *testing.T) {
	net := NewInMemNet()
	net.Close()
	net.Close()
	if err := net.AddHandler(amcast.ClientNode(0), func(amcast.Envelope) {}); err == nil {
		t.Fatal("registration after close accepted")
	}
}

func tcpBook(t *testing.T, ids ...amcast.NodeID) AddrBook {
	t.Helper()
	book := make(AddrBook)
	for _, id := range ids {
		ln, err := net_Listen()
		if err != nil {
			t.Fatal(err)
		}
		addr := ln.Addr().String()
		ln.Close()
		book[id] = addr
	}
	return book
}

func TestTCPSkeenTwoGroups(t *testing.T) {
	groups := []amcast.GroupID{1, 2}
	ids := []amcast.NodeID{amcast.GroupNode(1), amcast.GroupNode(2), amcast.ClientNode(0)}
	book := tcpBook(t, ids...)

	log := newDeliverLog()
	var nodes []*TCPNode
	for _, g := range groups {
		eng := skeen.MustNew(skeen.Config{Group: g, Groups: groups})
		n, err := NewTCPEngineNode(eng, book, log.add)
		if err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, n)
	}
	var replyCount sync.Map
	cl, err := NewTCPNode(amcast.ClientNode(0), book, func(env amcast.Envelope) {
		if env.Kind == amcast.KindReply {
			replyCount.Store(fmt.Sprintf("%s-%d", env.Msg.ID, env.From), true)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		cl.Close()
		for _, n := range nodes {
			n.Close()
		}
	}()

	for i := uint64(1); i <= 3; i++ {
		m := msg(i, 1, 2)
		for _, g := range m.Dst {
			if err := cl.Send(amcast.GroupNode(g),
				amcast.Envelope{Kind: amcast.KindRequest, From: m.Sender, Msg: m}); err != nil {
				t.Fatal(err)
			}
		}
	}
	waitFor(t, 10*time.Second, func() bool { return log.total() == 6 })
	if !reflect.DeepEqual(log.seq(1), log.seq(2)) {
		t.Fatalf("groups disagree: %v vs %v", log.seq(1), log.seq(2))
	}
}

func TestTCPUnknownPeer(t *testing.T) {
	book := tcpBook(t, amcast.ClientNode(0))
	n, err := NewTCPNode(amcast.ClientNode(0), book, func(amcast.Envelope) {})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	if err := n.Send(amcast.GroupNode(9), amcast.Envelope{Kind: amcast.KindFwd}); err == nil {
		t.Fatal("send to unknown peer succeeded")
	}
}

func TestTCPNodeNotInBook(t *testing.T) {
	if _, err := NewTCPNode(amcast.ClientNode(0), AddrBook{}, func(amcast.Envelope) {}); err == nil {
		t.Fatal("node without address accepted")
	}
}

func TestTCPCloseUnblocks(t *testing.T) {
	book := tcpBook(t, amcast.ClientNode(0))
	n, err := NewTCPNode(amcast.ClientNode(0), book, func(amcast.Envelope) {})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		n.Close()
		n.Close() // idempotent
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not return")
	}
	if err := n.Send(amcast.ClientNode(0), amcast.Envelope{Kind: amcast.KindFwd}); err == nil {
		t.Fatal("send after close succeeded")
	}
}
