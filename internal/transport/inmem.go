// Package transport provides real (wall-clock) runtimes for the protocol
// engines: an in-memory goroutine transport for single-process
// deployments and demos, and a TCP transport for multi-process
// deployments (cmd/flexnode, cmd/flexclient). Both feed each node from
// a single goroutine, preserving the engines' single-threaded contract,
// and both use the wire codec so message sizes match the simulator's
// accounting. Both carry envelope batches natively: a batch travels the
// transport as one unit (one channel operation in memory, one frame on
// the wire), which is what the batched node runtime (internal/runtime)
// builds on.
package transport

import (
	"fmt"
	"sync"

	"flexcast/amcast"
)

// DeliverFunc observes application deliveries at a node. The runtime has
// already sent the client reply when it is called.
type DeliverFunc func(d amcast.Delivery)

// BatchHandler consumes one inbound batch. The slice is owned by the
// callee and is never reused by the transport.
type BatchHandler func(envs []amcast.Envelope)

// InMemNet connects nodes through buffered channels, one mailbox
// goroutine per node — the group-sharding of the in-process runtime.
// Mailboxes carry batches; a full mailbox blocks the sender, providing
// natural backpressure. Close stops all nodes and waits for them.
// Registration is mutex-guarded; the send path takes only a read lock,
// so concurrent senders do not serialize on the registry.
type InMemNet struct {
	mu     sync.RWMutex
	nodes  map[amcast.NodeID]*inmemNode
	closed bool
	wg     sync.WaitGroup
}

// inmemNode is one mailbox: an envelope-bounded batch queue (envQueue)
// plus the node's identity.
type inmemNode struct {
	id amcast.NodeID
	in *envQueue
}

// mailboxDepth bounds per-node mailboxes in envelopes; sends to a full
// mailbox block, providing natural backpressure.
const mailboxDepth = 1024

// NewInMemNet returns an empty in-memory network.
func NewInMemNet() *InMemNet {
	return &InMemNet{nodes: make(map[amcast.NodeID]*inmemNode)}
}

// AddEngine attaches a protocol engine as a node, processing inbound
// batches through the engine's batch fast path and transmitting outputs
// unbatched. Deliveries trigger client replies automatically; onDeliver
// may be nil. For per-destination output batching, attach a
// runtime.Node via AddBatchHandler instead.
func (n *InMemNet) AddEngine(eng amcast.Engine, onDeliver DeliverFunc) error {
	id := amcast.GroupNode(eng.Group())
	return n.addNode(id, func(envs []amcast.Envelope) {
		outs := amcast.BatchStep(eng, envs)
		for _, o := range outs {
			n.Send(id, o.To, o.Env)
		}
		for _, d := range eng.TakeDeliveries() {
			if d.Msg.Sender.IsClient() {
				n.Send(id, d.Msg.Sender, amcast.Envelope{
					Kind:   amcast.KindReply,
					From:   id,
					Msg:    d.Msg.Header(),
					TS:     d.Seq,
					Result: d.Result,
				})
			}
			if onDeliver != nil {
				onDeliver(d)
			}
		}
	})
}

// AddHandler attaches a raw per-envelope handler (clients use this).
func (n *InMemNet) AddHandler(id amcast.NodeID, h func(env amcast.Envelope)) error {
	return n.addNode(id, func(envs []amcast.Envelope) {
		for _, env := range envs {
			h(env)
		}
	})
}

// AddBatchHandler attaches a raw batch handler; the node runtime
// (internal/runtime) registers itself this way.
func (n *InMemNet) AddBatchHandler(id amcast.NodeID, h BatchHandler) error {
	return n.addNode(id, h)
}

func (n *InMemNet) addNode(id amcast.NodeID, h BatchHandler) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return fmt.Errorf("transport: network closed")
	}
	if _, dup := n.nodes[id]; dup {
		return fmt.Errorf("transport: node %s already registered", id)
	}
	node := &inmemNode{id: id, in: newEnvQueue(mailboxDepth)}
	n.nodes[id] = node
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		for {
			envs := node.in.pop()
			if envs == nil {
				return // stopped and drained
			}
			h(envs)
		}
	}()
	return nil
}

// Send enqueues one envelope to the destination mailbox. Envelopes to
// unknown nodes are dropped (matching a network that loses packets to
// dead hosts); per-pair ordering follows channel FIFO semantics.
func (n *InMemNet) Send(from, to amcast.NodeID, env amcast.Envelope) {
	n.SendBatch(from, to, []amcast.Envelope{env})
}

// SendBatch enqueues a batch as one unit: one channel operation however
// many envelopes it carries. The callee owns the slice afterwards.
func (n *InMemNet) SendBatch(from, to amcast.NodeID, envs []amcast.Envelope) {
	if len(envs) == 0 {
		return
	}
	n.mu.RLock()
	node, ok := n.nodes[to]
	closed := n.closed
	n.mu.RUnlock()
	if !ok || closed {
		return
	}
	node.in.push(envs)
}

// Close stops all nodes and waits for their mailboxes to drain.
func (n *InMemNet) Close() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.closed = true
	nodes := make([]*inmemNode, 0, len(n.nodes))
	for _, node := range n.nodes {
		nodes = append(nodes, node)
	}
	n.mu.Unlock()
	for _, node := range nodes {
		node.in.close()
	}
	n.wg.Wait()
}
