// Package transport provides real (wall-clock) runtimes for the protocol
// engines: an in-memory goroutine transport for single-process
// deployments and demos, and a TCP transport for multi-process
// deployments (cmd/flexnode, cmd/flexclient). Both feed each engine from
// a single goroutine, preserving the engines' single-threaded contract,
// and both use the wire codec so message sizes match the simulator's
// accounting.
package transport

import (
	"fmt"
	"sync"

	"flexcast/amcast"
)

// DeliverFunc observes application deliveries at a node. The runtime has
// already sent the client reply when it is called.
type DeliverFunc func(d amcast.Delivery)

// InMemNet connects engines through buffered channels, one mailbox
// goroutine per node. Close stops all nodes and waits for them.
type InMemNet struct {
	mu     sync.Mutex
	nodes  map[amcast.NodeID]*inmemNode
	closed bool
	wg     sync.WaitGroup
}

type inmemNode struct {
	id   amcast.NodeID
	in   chan amcast.Envelope
	stop chan struct{}
}

// mailboxDepth bounds per-node queues; sends to a full mailbox block,
// providing natural backpressure.
const mailboxDepth = 1024

// NewInMemNet returns an empty in-memory network.
func NewInMemNet() *InMemNet {
	return &InMemNet{nodes: make(map[amcast.NodeID]*inmemNode)}
}

// AddEngine attaches a protocol engine as a node. Deliveries trigger
// client replies automatically; onDeliver may be nil.
func (n *InMemNet) AddEngine(eng amcast.Engine, onDeliver DeliverFunc) error {
	id := amcast.GroupNode(eng.Group())
	return n.addNode(id, func(env amcast.Envelope) {
		outs := eng.OnEnvelope(env)
		for _, o := range outs {
			n.Send(id, o.To, o.Env)
		}
		for _, d := range eng.TakeDeliveries() {
			if d.Msg.Sender.IsClient() {
				n.Send(id, d.Msg.Sender, amcast.Envelope{
					Kind: amcast.KindReply,
					From: id,
					Msg:  d.Msg.Header(),
					TS:   d.Seq,
				})
			}
			if onDeliver != nil {
				onDeliver(d)
			}
		}
	})
}

// AddHandler attaches a raw envelope handler (clients use this).
func (n *InMemNet) AddHandler(id amcast.NodeID, h func(env amcast.Envelope)) error {
	return n.addNode(id, h)
}

func (n *InMemNet) addNode(id amcast.NodeID, h func(env amcast.Envelope)) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return fmt.Errorf("transport: network closed")
	}
	if _, dup := n.nodes[id]; dup {
		return fmt.Errorf("transport: node %s already registered", id)
	}
	node := &inmemNode{id: id, in: make(chan amcast.Envelope, mailboxDepth), stop: make(chan struct{})}
	n.nodes[id] = node
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		for {
			select {
			case env := <-node.in:
				h(env)
			case <-node.stop:
				// Drain what is already queued, then exit.
				for {
					select {
					case env := <-node.in:
						h(env)
					default:
						return
					}
				}
			}
		}
	}()
	return nil
}

// Send enqueues an envelope to the destination mailbox. Envelopes to
// unknown nodes are dropped (matching a network that loses packets to
// dead hosts); per-pair ordering follows channel FIFO semantics.
func (n *InMemNet) Send(from, to amcast.NodeID, env amcast.Envelope) {
	n.mu.Lock()
	node, ok := n.nodes[to]
	closed := n.closed
	n.mu.Unlock()
	if !ok || closed {
		return
	}
	select {
	case node.in <- env:
	case <-node.stop:
	}
}

// Close stops all nodes and waits for their mailboxes to drain.
func (n *InMemNet) Close() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.closed = true
	nodes := make([]*inmemNode, 0, len(n.nodes))
	for _, node := range n.nodes {
		nodes = append(nodes, node)
	}
	n.mu.Unlock()
	for _, node := range nodes {
		close(node.stop)
	}
	n.wg.Wait()
}
