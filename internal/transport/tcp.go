package transport

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"flexcast/amcast"
	"flexcast/internal/codec"
)

// AddrBook maps node ids to listen addresses ("host:port").
type AddrBook map[amcast.NodeID]string

// maxFrame bounds a single wire frame (a large FlexCast history diff
// still fits comfortably).
const maxFrame = 16 << 20

// dialRetry is the backoff between reconnection attempts.
const dialRetry = 200 * time.Millisecond

// TCPNode is one process in a TCP deployment: it listens for inbound
// envelopes, maintains lazy persistent connections to peers, and feeds a
// handler from a single dispatcher goroutine (preserving the engine
// single-threaded contract). Frames are either single envelopes or batch
// frames (codec.BatchKind); a batch is dispatched to the handler as one
// unit.
type TCPNode struct {
	id      amcast.NodeID
	book    AddrBook
	ln      net.Listener
	handler BatchHandler

	mu      sync.Mutex
	conns   map[amcast.NodeID]*peerConn
	inbound map[net.Conn]struct{}
	closed  bool

	// in is envelope-bounded (see envQueue): inbound buffering is the
	// same whatever the batch size, and a saturated dispatcher pushes
	// backpressure into the kernel socket buffers.
	in *envQueue
	wg sync.WaitGroup
}

type peerConn struct {
	mu   sync.Mutex // serializes frame writes
	conn net.Conn
	w    *bufio.Writer
}

// NewTCPNode starts listening on the node's address from the book and
// dispatches inbound envelopes to handler, one call per envelope.
func NewTCPNode(id amcast.NodeID, book AddrBook, handler func(env amcast.Envelope)) (*TCPNode, error) {
	return NewTCPBatchNode(id, book, func(envs []amcast.Envelope) {
		for _, env := range envs {
			handler(env)
		}
	})
}

// NewTCPBatchNode starts listening on the node's address from the book
// and dispatches inbound batches to handler, one call per frame; the
// node runtime (internal/runtime) attaches this way.
func NewTCPBatchNode(id amcast.NodeID, book AddrBook, handler BatchHandler) (*TCPNode, error) {
	addr, ok := book[id]
	if !ok {
		return nil, fmt.Errorf("transport: node %s not in address book", id)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	n := &TCPNode{
		id:      id,
		book:    book,
		ln:      ln,
		handler: handler,
		conns:   make(map[amcast.NodeID]*peerConn),
		inbound: make(map[net.Conn]struct{}),
		in:      newEnvQueue(mailboxDepth),
	}
	n.wg.Add(2)
	go n.acceptLoop()
	go n.dispatchLoop()
	return n, nil
}

// NewTCPEngineNode runs a protocol engine over TCP: outputs are
// transmitted, deliveries answered to clients.
func NewTCPEngineNode(eng amcast.Engine, book AddrBook, onDeliver DeliverFunc) (*TCPNode, error) {
	id := amcast.GroupNode(eng.Group())
	var n *TCPNode
	handler := func(env amcast.Envelope) {
		outs := eng.OnEnvelope(env)
		for _, o := range outs {
			if err := n.Send(o.To, o.Env); err != nil {
				// Peer unreachable: FIFO links are assumed reliable by the
				// protocols; the send path retries dialing, so this only
				// triggers on shutdown.
				continue
			}
		}
		for _, d := range eng.TakeDeliveries() {
			if d.Msg.Sender.IsClient() {
				_ = n.Send(d.Msg.Sender, amcast.Envelope{
					Kind:   amcast.KindReply,
					From:   id,
					Msg:    d.Msg.Header(),
					TS:     d.Seq,
					Result: d.Result,
				})
			}
			if onDeliver != nil {
				onDeliver(d)
			}
		}
	}
	node, err := NewTCPNode(id, book, handler)
	if err != nil {
		return nil, err
	}
	n = node
	return n, nil
}

// Addr returns the actual listen address (useful with ":0" test setups).
func (n *TCPNode) Addr() string { return n.ln.Addr().String() }

func (n *TCPNode) acceptLoop() {
	defer n.wg.Done()
	for {
		conn, err := n.ln.Accept()
		if err != nil {
			return // listener closed
		}
		n.mu.Lock()
		if n.closed {
			n.mu.Unlock()
			conn.Close()
			return
		}
		n.inbound[conn] = struct{}{}
		n.mu.Unlock()
		n.wg.Add(1)
		go n.readLoop(conn)
	}
}

func (n *TCPNode) readLoop(conn net.Conn) {
	defer n.wg.Done()
	defer func() {
		conn.Close()
		n.mu.Lock()
		delete(n.inbound, conn)
		n.mu.Unlock()
	}()
	r := bufio.NewReader(conn)
	for {
		envs, err := readFrame(r)
		if err != nil {
			return
		}
		if !n.in.push(envs) {
			return // node closed
		}
	}
}

func (n *TCPNode) dispatchLoop() {
	defer n.wg.Done()
	for {
		envs := n.in.pop()
		if envs == nil {
			return // closed and drained
		}
		n.handler(envs)
	}
}

// Send transmits one envelope, dialing and caching the peer connection.
// It retries the dial once after a short backoff, then reports the
// error. The frame is encoded into a pooled buffer (internal/codec):
// writeFrame copies it into the connection's bufio writer before
// returning, so the frame recycles immediately — zero allocations per
// send in steady state.
func (n *TCPNode) Send(to amcast.NodeID, env amcast.Envelope) error {
	f := codec.GetFrame(codec.Size(env))
	f.B = codec.Append(f.B, env)
	err := n.sendPayload(to, f.B)
	f.Release()
	return err
}

// SendBatch transmits a batch as one wire frame, amortizing the frame
// header, the write syscall, the flush — and, via the pooled encode
// buffer, the frame allocation — across the batch. A single-envelope
// batch is sent as a plain envelope frame.
func (n *TCPNode) SendBatch(to amcast.NodeID, envs []amcast.Envelope) error {
	switch len(envs) {
	case 0:
		return nil
	case 1:
		return n.Send(to, envs[0])
	default:
		f := codec.GetFrame(codec.BatchSize(envs))
		f.B = codec.AppendBatch(f.B, envs)
		err := n.sendPayload(to, f.B)
		f.Release()
		return err
	}
}

func (n *TCPNode) sendPayload(to amcast.NodeID, payload []byte) error {
	pc, err := n.peer(to)
	if err != nil {
		return err
	}
	if err := pc.writeFrame(payload); err != nil {
		// Connection broke: drop it and retry once on a fresh dial.
		n.dropPeer(to, pc)
		time.Sleep(dialRetry)
		pc, err = n.peer(to)
		if err != nil {
			return err
		}
		if err := pc.writeFrame(payload); err != nil {
			n.dropPeer(to, pc)
			return err
		}
	}
	return nil
}

func (n *TCPNode) peer(to amcast.NodeID) (*peerConn, error) {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil, errors.New("transport: node closed")
	}
	if pc, ok := n.conns[to]; ok {
		n.mu.Unlock()
		return pc, nil
	}
	addr, ok := n.book[to]
	n.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("transport: node %s not in address book", to)
	}
	conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", addr, err)
	}
	pc := &peerConn{conn: conn, w: bufio.NewWriter(conn)}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		conn.Close()
		return nil, errors.New("transport: node closed")
	}
	if existing, ok := n.conns[to]; ok {
		conn.Close() // lost the race; reuse the existing connection
		return existing, nil
	}
	n.conns[to] = pc
	return pc, nil
}

func (n *TCPNode) dropPeer(to amcast.NodeID, pc *peerConn) {
	n.mu.Lock()
	if cur, ok := n.conns[to]; ok && cur == pc {
		delete(n.conns, to)
	}
	n.mu.Unlock()
	pc.conn.Close()
}

// Close shuts the node down: the listener, all connections, and the
// dispatcher.
func (n *TCPNode) Close() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.closed = true
	conns := make([]*peerConn, 0, len(n.conns))
	for _, pc := range n.conns {
		conns = append(conns, pc)
	}
	n.conns = make(map[amcast.NodeID]*peerConn)
	inbound := make([]net.Conn, 0, len(n.inbound))
	for c := range n.inbound {
		inbound = append(inbound, c)
	}
	n.mu.Unlock()

	n.in.close()
	n.ln.Close()
	for _, pc := range conns {
		pc.conn.Close()
	}
	for _, c := range inbound {
		c.Close()
	}
	n.wg.Wait()
}

func (pc *peerConn) writeFrame(payload []byte) error {
	var hdr [binary.MaxVarintLen64]byte
	hn := binary.PutUvarint(hdr[:], uint64(len(payload)))
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if _, err := pc.w.Write(hdr[:hn]); err != nil {
		return err
	}
	if _, err := pc.w.Write(payload); err != nil {
		return err
	}
	return pc.w.Flush()
}

// readFrame reads one length-prefixed frame and decodes it as a batch or
// a single envelope, discriminated by the payload's first byte. The
// frame lands in a pooled buffer: control frames (no payload bytes —
// the decoder copies every other section) recycle it immediately, so
// the ACK/NOTIF/TS/REPLY traffic that dominates FlexCast's envelope
// count decodes without a per-frame allocation. Payload frames keep
// buffer ownership, exactly the allocation the unpooled path made.
func readFrame(r *bufio.Reader) ([]amcast.Envelope, error) {
	size, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, err
	}
	if size > maxFrame {
		return nil, fmt.Errorf("transport: frame of %d bytes exceeds limit", size)
	}
	f := codec.GetFrame(int(size))
	f.B = f.B[:size]
	if _, err := io.ReadFull(r, f.B); err != nil {
		f.Release()
		return nil, err
	}
	envs, err := codec.DecodeFrame(f.B)
	if err != nil {
		f.Release()
		return nil, err
	}
	switch {
	case !codec.FrameAliases(envs):
		f.Release()
	case cap(f.B) >= 2*len(f.B):
		// A payload frame in a pooled buffer at least twice its size:
		// pinning the buffer for the payloads' lifetime wastes more than
		// copying them out, so detach and recycle.
		codec.DetachPayloads(envs)
		f.Release()
	default:
		f.Disown()
	}
	return envs, nil
}
