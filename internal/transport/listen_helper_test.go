package transport

import "net"

// net_Listen grabs an ephemeral loopback port for test address books.
func net_Listen() (net.Listener, error) {
	return net.Listen("tcp", "127.0.0.1:0")
}
