package transport

import (
	"reflect"
	"testing"
	"time"

	"flexcast/amcast"
	"flexcast/internal/core"
	"flexcast/internal/overlay"
)

// TestTCPFlexCastThreeGroups runs the full FlexCast protocol over real
// TCP sockets: overlapping destination sets force MSG, ACK and NOTIF
// traffic across connections, and all groups must converge on consistent
// orders.
func TestTCPFlexCastThreeGroups(t *testing.T) {
	ov := overlay.MustCDAG([]amcast.GroupID{1, 2, 3})
	ids := []amcast.NodeID{
		amcast.GroupNode(1), amcast.GroupNode(2), amcast.GroupNode(3),
		amcast.ClientNode(0),
	}
	book := tcpBook(t, ids...)

	log := newDeliverLog()
	var nodes []*TCPNode
	for _, g := range ov.Order() {
		eng := core.MustNew(core.Config{Group: g, Overlay: ov})
		n, err := NewTCPEngineNode(eng, book, log.add)
		if err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, n)
	}
	cl, err := NewTCPNode(amcast.ClientNode(0), book, func(amcast.Envelope) {})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		cl.Close()
		for _, n := range nodes {
			n.Close()
		}
	}()

	// The Figure-3(c) message pattern plus extras, issued in sequence so
	// the entry order is deterministic.
	script := []amcast.Message{
		msg(1, 2, 3),    // lca 2
		msg(2, 1, 2),    // lca 1
		msg(3, 1, 3),    // lca 1: triggers NOTIF to 2
		msg(4, 1, 2, 3), // lca 1
		msg(5, 3),       // local
	}
	for _, m := range script {
		entry := amcast.GroupNode(ov.Lca(m.Dst))
		if err := cl.Send(entry, amcast.Envelope{Kind: amcast.KindRequest, From: m.Sender, Msg: m}); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 10*time.Second, func() bool { return log.total() == 10 })

	// Pairwise order consistency over shared messages.
	seqs := map[amcast.GroupID][]amcast.MsgID{
		1: log.seq(1), 2: log.seq(2), 3: log.seq(3),
	}
	for g1 := amcast.GroupID(1); g1 <= 3; g1++ {
		for g2 := g1 + 1; g2 <= 3; g2++ {
			a := restrictTo(seqs[g1], seqs[g2])
			b := restrictTo(seqs[g2], seqs[g1])
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("groups %d and %d order shared messages differently: %v vs %v", g1, g2, a, b)
			}
		}
	}
}

// restrictTo filters seq to ids present in other, preserving order.
func restrictTo(seq, other []amcast.MsgID) []amcast.MsgID {
	have := make(map[amcast.MsgID]bool, len(other))
	for _, id := range other {
		have[id] = true
	}
	var out []amcast.MsgID
	for _, id := range seq {
		if have[id] {
			out = append(out, id)
		}
	}
	return out
}
