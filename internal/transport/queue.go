package transport

import (
	"sync"

	"flexcast/amcast"
)

// envQueue is a FIFO of batches bounded by its total envelope count, so
// a batched sender gets exactly the same effective buffering as an
// unbatched one (a channel of batches would multiply the bound by the
// batch size, and the extra queue residency visibly inflates the
// protocols' in-flight state under saturation). Both transports use it:
// the in-memory mailboxes and the TCP inbound dispatch queue.
type envQueue struct {
	mu      sync.Mutex
	cond    *sync.Cond
	queue   [][]amcast.Envelope
	queued  int // envelopes across queue
	limit   int
	stopped bool
}

func newEnvQueue(limit int) *envQueue {
	q := &envQueue{limit: limit}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// push blocks until the queue has room, then appends the batch; it
// reports false once the queue stopped.
func (q *envQueue) push(envs []amcast.Envelope) bool {
	q.mu.Lock()
	for q.queued >= q.limit && !q.stopped {
		q.cond.Wait()
	}
	if q.stopped {
		q.mu.Unlock()
		return false
	}
	q.queue = append(q.queue, envs)
	q.queued += len(envs)
	q.mu.Unlock()
	q.cond.Signal()
	return true
}

// pop blocks until a batch is available; nil means stopped and drained.
func (q *envQueue) pop() []amcast.Envelope {
	q.mu.Lock()
	for len(q.queue) == 0 && !q.stopped {
		q.cond.Wait()
	}
	if len(q.queue) == 0 {
		q.mu.Unlock()
		return nil
	}
	envs := q.queue[0]
	q.queue[0] = nil
	q.queue = q.queue[1:]
	q.queued -= len(envs)
	q.mu.Unlock()
	q.cond.Broadcast()
	return envs
}

func (q *envQueue) close() {
	q.mu.Lock()
	q.stopped = true
	q.mu.Unlock()
	q.cond.Broadcast()
}
