package sim

import (
	"fmt"

	"flexcast/amcast"
)

// Handler consumes envelopes addressed to one node.
type Handler interface {
	HandleEnvelope(env amcast.Envelope)
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(env amcast.Envelope)

// HandleEnvelope implements Handler.
func (f HandlerFunc) HandleEnvelope(env amcast.Envelope) { f(env) }

// LatencyFunc returns the one-way latency in microseconds between two
// nodes.
type LatencyFunc func(from, to amcast.NodeID) Time

// ProcCostFunc returns the serial processing cost a node pays to handle an
// envelope. Return 0 for an infinitely fast node.
type ProcCostFunc func(node amcast.NodeID, env amcast.Envelope) Time

// SendHook observes every transmission; the harness uses it to record the
// per-node message and byte counters behind Figures 1, 8 and 9.
type SendHook func(from, to amcast.NodeID, env amcast.Envelope)

// LinkFault is the perturbation a FaultFunc applies to one transmission.
//
// The model deliberately has no "lose forever" knob: the protocols assume
// reliable FIFO channels (TCP in the paper's prototypes), under which a
// lost packet manifests as a retransmission delay, not as loss. A fault
// injector therefore expresses message drop, reordering pressure and
// transient partitions uniformly as extra delay — the per-link FIFO clamp
// then models head-of-line blocking, exactly as TCP would.
type LinkFault struct {
	// Delay is extra one-way latency added to this transmission:
	// retransmission backoff for a simulated drop, random jitter, or
	// "until the partition heals".
	Delay Time
	// Duplicates is the number of extra copies of the envelope delivered
	// after the original (simulating at-least-once retransmission).
	// Receivers must be idempotent — every engine in this repository is.
	Duplicates int
}

// FaultFunc inspects one transmission and returns its perturbation.
// Called once per Send, in deterministic simulator order, so a seeded
// implementation yields reproducible runs (internal/chaos).
type FaultFunc func(from, to amcast.NodeID, env amcast.Envelope) LinkFault

type linkKey struct{ from, to amcast.NodeID }

// parkedEnv is an envelope that arrived at a crashed node and waits for
// its restart.
type parkedEnv struct {
	from amcast.NodeID
	env  amcast.Envelope
}

// Network connects handlers through simulated point-to-point links.
//
// Links are reliable and FIFO by default (the paper's model assumes FIFO
// reliable channels): if jitter would reorder two envelopes on the same
// link, the later send is delayed to preserve order. Tests that explicitly
// exercise non-FIFO behaviour can disable the clamp.
type Network struct {
	sim      *Simulator
	latency  LatencyFunc
	procCost ProcCostFunc
	jitter   func(from, to amcast.NodeID) Time
	noFIFO   bool

	handlers    map[amcast.NodeID]Handler
	lastArrival map[linkKey]Time
	busyUntil   map[amcast.NodeID]Time
	onSend      SendHook
	onHandle    SendHook
	dropped     uint64
	partitioned map[linkKey]bool
	faults      FaultFunc
	down        map[amcast.NodeID]bool
	parked      map[amcast.NodeID][]parkedEnv
}

// NetworkOption configures a Network.
type NetworkOption func(*Network)

// WithProcCost installs a per-envelope processing-cost model.
func WithProcCost(f ProcCostFunc) NetworkOption {
	return func(n *Network) { n.procCost = f }
}

// WithJitter adds per-transmission extra latency (may vary per call; use a
// seeded source for determinism).
func WithJitter(f func(from, to amcast.NodeID) Time) NetworkOption {
	return func(n *Network) { n.jitter = f }
}

// WithoutFIFO disables the per-link FIFO clamp; only tests use this.
func WithoutFIFO() NetworkOption {
	return func(n *Network) { n.noFIFO = true }
}

// WithSendHook observes every send (before latency is applied).
func WithSendHook(h SendHook) NetworkOption {
	return func(n *Network) { n.onSend = h }
}

// WithHandleHook observes every envelope as it is handed to its
// destination handler (after latency and queueing).
func WithHandleHook(h SendHook) NetworkOption {
	return func(n *Network) { n.onHandle = h }
}

// WithFaults installs a fault injector consulted on every transmission
// (internal/chaos builds seeded ones).
func WithFaults(f FaultFunc) NetworkOption {
	return func(n *Network) { n.faults = f }
}

// NewNetwork builds a network over the simulator with the given one-way
// latency model.
func NewNetwork(s *Simulator, latency LatencyFunc, opts ...NetworkOption) *Network {
	n := &Network{
		sim:         s,
		latency:     latency,
		handlers:    make(map[amcast.NodeID]Handler),
		lastArrival: make(map[linkKey]Time),
		busyUntil:   make(map[amcast.NodeID]Time),
		partitioned: make(map[linkKey]bool),
		down:        make(map[amcast.NodeID]bool),
		parked:      make(map[amcast.NodeID][]parkedEnv),
	}
	for _, o := range opts {
		o(n)
	}
	return n
}

// Register attaches a handler to a node id. Registering the same id twice
// panics: it is always a deployment bug.
func (n *Network) Register(id amcast.NodeID, h Handler) {
	if _, dup := n.handlers[id]; dup {
		panic(fmt.Sprintf("sim: node %s registered twice", id))
	}
	n.handlers[id] = h
}

// Partition drops all traffic from 'from' to 'to' until Heal is called.
// Used by failure-injection tests.
func (n *Network) Partition(from, to amcast.NodeID) {
	n.partitioned[linkKey{from, to}] = true
}

// Heal restores a partitioned link.
func (n *Network) Heal(from, to amcast.NodeID) {
	delete(n.partitioned, linkKey{from, to})
}

// Dropped returns the number of envelopes dropped by partitions.
func (n *Network) Dropped() uint64 { return n.dropped }

// dupSpacing separates duplicate copies from the original arrival.
const dupSpacing Time = 3

// Send transmits an envelope. Delivery happens after the link's one-way
// latency (plus jitter and any injected fault delay), in FIFO order per
// link, and after the destination node has finished processing all
// earlier envelopes (serial processing model).
func (n *Network) Send(from, to amcast.NodeID, env amcast.Envelope) {
	if n.onSend != nil {
		n.onSend(from, to, env)
	}
	key := linkKey{from, to}
	if n.partitioned[key] {
		n.dropped++
		return
	}
	lat := n.latency(from, to)
	if n.jitter != nil {
		lat += n.jitter(from, to)
	}
	var fault LinkFault
	if n.faults != nil {
		fault = n.faults(from, to, env)
		if fault.Delay > 0 {
			lat += fault.Delay
		}
	}
	arrival := n.sim.Now() + lat
	if !n.noFIFO {
		if last := n.lastArrival[key]; arrival < last {
			arrival = last
		}
		n.lastArrival[key] = arrival
	}
	n.sim.ScheduleAt(arrival, func() { n.arrive(from, to, env) })
	// Duplicate copies trail the original; they bypass the FIFO clamp (a
	// retransmitted duplicate of an old message arrives out of band) and
	// exercise receiver idempotency.
	for i := 1; i <= fault.Duplicates; i++ {
		at := arrival + Time(i)*dupSpacing
		n.sim.ScheduleAt(at, func() { n.arrive(from, to, env) })
	}
}

func (n *Network) arrive(from, to amcast.NodeID, env amcast.Envelope) {
	if _, ok := n.handlers[to]; !ok {
		panic(fmt.Sprintf("sim: envelope %s for unregistered node %s", env.Kind, to))
	}
	var cost Time
	if n.procCost != nil {
		cost = n.procCost(to, env)
	}
	if cost <= 0 {
		n.handoff(from, to, env)
		return
	}
	start := n.sim.Now()
	if busy := n.busyUntil[to]; busy > start {
		start = busy
	}
	finish := start + cost
	n.busyUntil[to] = finish
	n.sim.ScheduleAt(finish, func() { n.handoff(from, to, env) })
}

// handoff hands an envelope to its destination handler, or parks it when
// the destination is crashed.
func (n *Network) handoff(from, to amcast.NodeID, env amcast.Envelope) {
	if n.down[to] {
		n.parked[to] = append(n.parked[to], parkedEnv{from: from, env: env})
		return
	}
	if n.onHandle != nil {
		n.onHandle(from, to, env)
	}
	n.handlers[to].HandleEnvelope(env)
}

// CrashNode takes a node offline: envelopes that arrive while it is down
// are parked in arrival order instead of being handed to its handler —
// the reliable-channel model (TCP retransmits across a peer restart), so
// a crash delays traffic but loses none. The runtime that owns the node
// is responsible for restoring the node's protocol state (for example via
// amcast.SnapshotEngine) before calling RestartNode.
func (n *Network) CrashNode(id amcast.NodeID) { n.down[id] = true }

// Crashed reports whether a node is currently down.
func (n *Network) Crashed(id amcast.NodeID) bool { return n.down[id] }

// Parked reports how many envelopes are parked for a crashed node.
func (n *Network) Parked(id amcast.NodeID) int { return len(n.parked[id]) }

// RestartNode brings a crashed node back: parked envelopes are handed to
// its handler immediately, in arrival order (per-link FIFO is preserved —
// arrival order respects the per-link clamp).
func (n *Network) RestartNode(id amcast.NodeID) {
	delete(n.down, id)
	q := n.parked[id]
	delete(n.parked, id)
	for _, p := range q {
		n.handoff(p.from, id, p.env)
	}
}
