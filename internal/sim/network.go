package sim

import (
	"fmt"

	"flexcast/amcast"
)

// Handler consumes envelopes addressed to one node.
type Handler interface {
	HandleEnvelope(env amcast.Envelope)
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(env amcast.Envelope)

// HandleEnvelope implements Handler.
func (f HandlerFunc) HandleEnvelope(env amcast.Envelope) { f(env) }

// LatencyFunc returns the one-way latency in microseconds between two
// nodes.
type LatencyFunc func(from, to amcast.NodeID) Time

// ProcCostFunc returns the serial processing cost a node pays to handle an
// envelope. Return 0 for an infinitely fast node.
type ProcCostFunc func(node amcast.NodeID, env amcast.Envelope) Time

// SendHook observes every transmission; the harness uses it to record the
// per-node message and byte counters behind Figures 1, 8 and 9.
type SendHook func(from, to amcast.NodeID, env amcast.Envelope)

type linkKey struct{ from, to amcast.NodeID }

// Network connects handlers through simulated point-to-point links.
//
// Links are reliable and FIFO by default (the paper's model assumes FIFO
// reliable channels): if jitter would reorder two envelopes on the same
// link, the later send is delayed to preserve order. Tests that explicitly
// exercise non-FIFO behaviour can disable the clamp.
type Network struct {
	sim      *Simulator
	latency  LatencyFunc
	procCost ProcCostFunc
	jitter   func(from, to amcast.NodeID) Time
	noFIFO   bool

	handlers    map[amcast.NodeID]Handler
	lastArrival map[linkKey]Time
	busyUntil   map[amcast.NodeID]Time
	onSend      SendHook
	onHandle    SendHook
	dropped     uint64
	partitioned map[linkKey]bool
}

// NetworkOption configures a Network.
type NetworkOption func(*Network)

// WithProcCost installs a per-envelope processing-cost model.
func WithProcCost(f ProcCostFunc) NetworkOption {
	return func(n *Network) { n.procCost = f }
}

// WithJitter adds per-transmission extra latency (may vary per call; use a
// seeded source for determinism).
func WithJitter(f func(from, to amcast.NodeID) Time) NetworkOption {
	return func(n *Network) { n.jitter = f }
}

// WithoutFIFO disables the per-link FIFO clamp; only tests use this.
func WithoutFIFO() NetworkOption {
	return func(n *Network) { n.noFIFO = true }
}

// WithSendHook observes every send (before latency is applied).
func WithSendHook(h SendHook) NetworkOption {
	return func(n *Network) { n.onSend = h }
}

// WithHandleHook observes every envelope as it is handed to its
// destination handler (after latency and queueing).
func WithHandleHook(h SendHook) NetworkOption {
	return func(n *Network) { n.onHandle = h }
}

// NewNetwork builds a network over the simulator with the given one-way
// latency model.
func NewNetwork(s *Simulator, latency LatencyFunc, opts ...NetworkOption) *Network {
	n := &Network{
		sim:         s,
		latency:     latency,
		handlers:    make(map[amcast.NodeID]Handler),
		lastArrival: make(map[linkKey]Time),
		busyUntil:   make(map[amcast.NodeID]Time),
		partitioned: make(map[linkKey]bool),
	}
	for _, o := range opts {
		o(n)
	}
	return n
}

// Register attaches a handler to a node id. Registering the same id twice
// panics: it is always a deployment bug.
func (n *Network) Register(id amcast.NodeID, h Handler) {
	if _, dup := n.handlers[id]; dup {
		panic(fmt.Sprintf("sim: node %s registered twice", id))
	}
	n.handlers[id] = h
}

// Partition drops all traffic from 'from' to 'to' until Heal is called.
// Used by failure-injection tests.
func (n *Network) Partition(from, to amcast.NodeID) {
	n.partitioned[linkKey{from, to}] = true
}

// Heal restores a partitioned link.
func (n *Network) Heal(from, to amcast.NodeID) {
	delete(n.partitioned, linkKey{from, to})
}

// Dropped returns the number of envelopes dropped by partitions.
func (n *Network) Dropped() uint64 { return n.dropped }

// Send transmits an envelope. Delivery happens after the link's one-way
// latency (plus jitter), in FIFO order per link, and after the destination
// node has finished processing all earlier envelopes (serial processing
// model).
func (n *Network) Send(from, to amcast.NodeID, env amcast.Envelope) {
	if n.onSend != nil {
		n.onSend(from, to, env)
	}
	key := linkKey{from, to}
	if n.partitioned[key] {
		n.dropped++
		return
	}
	lat := n.latency(from, to)
	if n.jitter != nil {
		lat += n.jitter(from, to)
	}
	arrival := n.sim.Now() + lat
	if !n.noFIFO {
		if last := n.lastArrival[key]; arrival < last {
			arrival = last
		}
		n.lastArrival[key] = arrival
	}
	n.sim.ScheduleAt(arrival, func() { n.arrive(from, to, env) })
}

func (n *Network) arrive(from, to amcast.NodeID, env amcast.Envelope) {
	h, ok := n.handlers[to]
	if !ok {
		panic(fmt.Sprintf("sim: envelope %s for unregistered node %s", env.Kind, to))
	}
	var cost Time
	if n.procCost != nil {
		cost = n.procCost(to, env)
	}
	if cost <= 0 {
		if n.onHandle != nil {
			n.onHandle(from, to, env)
		}
		h.HandleEnvelope(env)
		return
	}
	start := n.sim.Now()
	if busy := n.busyUntil[to]; busy > start {
		start = busy
	}
	finish := start + cost
	n.busyUntil[to] = finish
	n.sim.ScheduleAt(finish, func() {
		if n.onHandle != nil {
			n.onHandle(from, to, env)
		}
		h.HandleEnvelope(env)
	})
}
