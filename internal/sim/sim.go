// Package sim is a deterministic discrete-event simulator. It substitutes
// for the paper's CloudLab testbed: protocol engines exchange envelopes
// over simulated FIFO links whose one-way latencies come from the WAN
// matrix (internal/wan), and nodes optionally model a serial processing
// cost per envelope, which is what produces the saturation behaviour of
// the throughput experiment (paper Figure 6).
//
// Determinism: events at equal times fire in scheduling order, and all
// randomness is injected by callers through seeded generators, so a run is
// a pure function of its configuration.
package sim

import "container/heap"

// Time is simulated time in microseconds since the start of the run.
type Time = int64

type event struct {
	at  Time
	seq uint64 // tie-break: FIFO among simultaneous events
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Simulator is the event loop. The zero value is not usable; call New.
type Simulator struct {
	now    Time
	heap   eventHeap
	seq    uint64
	nSteps uint64
}

// New returns an empty simulator at time zero.
func New() *Simulator { return &Simulator{} }

// Now returns the current simulated time.
func (s *Simulator) Now() Time { return s.now }

// Steps returns the number of events executed so far.
func (s *Simulator) Steps() uint64 { return s.nSteps }

// Schedule runs fn after the given delay (clamped to >= 0).
func (s *Simulator) Schedule(delay Time, fn func()) {
	if delay < 0 {
		delay = 0
	}
	s.ScheduleAt(s.now+delay, fn)
}

// ScheduleAt runs fn at the given absolute time (clamped to >= Now).
func (s *Simulator) ScheduleAt(at Time, fn func()) {
	if at < s.now {
		at = s.now
	}
	s.seq++
	heap.Push(&s.heap, event{at: at, seq: s.seq, fn: fn})
}

// Run executes events until the queue is empty.
func (s *Simulator) Run() {
	for len(s.heap) > 0 {
		s.step()
	}
}

// RunUntil executes events with time <= until, then sets the clock to
// until. Events scheduled beyond the horizon remain queued.
func (s *Simulator) RunUntil(until Time) {
	for len(s.heap) > 0 && s.heap[0].at <= until {
		s.step()
	}
	if s.now < until {
		s.now = until
	}
}

// RunFor advances the clock by d, executing due events.
func (s *Simulator) RunFor(d Time) { s.RunUntil(s.now + d) }

// Pending returns the number of queued events.
func (s *Simulator) Pending() int { return len(s.heap) }

func (s *Simulator) step() {
	e := heap.Pop(&s.heap).(event)
	s.now = e.at
	s.nSteps++
	e.fn()
}
