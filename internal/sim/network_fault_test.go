package sim

import (
	"testing"

	"flexcast/amcast"
)

func constLatency(l Time) LatencyFunc {
	return func(from, to amcast.NodeID) Time { return l }
}

type sink struct {
	got []amcast.Envelope
	at  []Time
}

func (s *sink) handler(sim *Simulator) Handler {
	return HandlerFunc(func(env amcast.Envelope) {
		s.got = append(s.got, env)
		s.at = append(s.at, sim.Now())
	})
}

func fenv(id uint64) amcast.Envelope {
	return amcast.Envelope{Kind: amcast.KindRequest, Msg: amcast.Message{ID: amcast.MsgID(id)}}
}

// TestFaultDelayPreservesFIFO verifies that an injected retransmission
// delay pushes later traffic on the same link behind the delayed envelope
// (head-of-line blocking), keeping per-link FIFO.
func TestFaultDelayPreservesFIFO(t *testing.T) {
	s := New()
	var rx sink
	delayFirst := true
	net := NewNetwork(s, constLatency(100), WithFaults(func(from, to amcast.NodeID, e amcast.Envelope) LinkFault {
		if delayFirst {
			delayFirst = false
			return LinkFault{Delay: 10_000}
		}
		return LinkFault{}
	}))
	a, b := amcast.NodeID(1), amcast.NodeID(2)
	net.Register(b, rxHandler(&rx, s))
	net.Send(a, b, fenv(1)) // delayed by 10ms
	net.Send(a, b, fenv(2)) // would arrive at 100µs, must queue behind 1
	s.Run()
	if len(rx.got) != 2 || rx.got[0].Msg.ID != 1 || rx.got[1].Msg.ID != 2 {
		t.Fatalf("arrival order = %v, want [1 2]", ids(rx.got))
	}
	if rx.at[0] != 10_100 || rx.at[1] != 10_100 {
		t.Fatalf("arrival times = %v, want both clamped to 10100", rx.at)
	}
}

// TestFaultDuplicates verifies duplicate copies arrive after the original.
func TestFaultDuplicates(t *testing.T) {
	s := New()
	var rx sink
	net := NewNetwork(s, constLatency(100), WithFaults(func(from, to amcast.NodeID, e amcast.Envelope) LinkFault {
		return LinkFault{Duplicates: 2}
	}))
	a, b := amcast.NodeID(1), amcast.NodeID(2)
	net.Register(b, rxHandler(&rx, s))
	net.Send(a, b, fenv(7))
	s.Run()
	if len(rx.got) != 3 {
		t.Fatalf("got %d copies, want 3", len(rx.got))
	}
	for i, e := range rx.got {
		if e.Msg.ID != 7 {
			t.Fatalf("copy %d is %s, want 7", i, e.Msg.ID)
		}
	}
	if !(rx.at[0] < rx.at[1] && rx.at[1] < rx.at[2]) {
		t.Fatalf("duplicate times %v not strictly after original", rx.at)
	}
}

// TestCrashParksAndRestartFlushes verifies that a crashed node loses no
// traffic: envelopes arriving during downtime are parked and handed over
// in arrival order on restart.
func TestCrashParksAndRestartFlushes(t *testing.T) {
	s := New()
	var rx sink
	net := NewNetwork(s, constLatency(100))
	a, b := amcast.NodeID(1), amcast.NodeID(2)
	net.Register(b, rxHandler(&rx, s))

	net.Send(a, b, fenv(1))
	s.Run()
	net.CrashNode(b)
	net.Send(a, b, fenv(2))
	net.Send(a, b, fenv(3))
	s.Run()
	if len(rx.got) != 1 {
		t.Fatalf("crashed node handled %d envelopes, want 1 (pre-crash)", len(rx.got))
	}
	if net.Parked(b) != 2 {
		t.Fatalf("parked = %d, want 2", net.Parked(b))
	}
	if !net.Crashed(b) {
		t.Fatal("Crashed(b) = false while down")
	}
	net.RestartNode(b)
	if got := ids(rx.got); len(got) != 3 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("post-restart order = %v, want [1 2 3]", got)
	}
	if net.Parked(b) != 0 || net.Crashed(b) {
		t.Fatal("restart did not clear parked/down state")
	}
	// Node works normally after restart.
	net.Send(a, b, fenv(4))
	s.Run()
	if len(rx.got) != 4 {
		t.Fatalf("post-restart send not handled: got %d", len(rx.got))
	}
}

// TestCrashWithProcCost verifies parking also applies on the serial
// processing path (envelope scheduled before the crash, finishing during
// downtime).
func TestCrashWithProcCost(t *testing.T) {
	s := New()
	var rx sink
	net := NewNetwork(s, constLatency(100), WithProcCost(func(node amcast.NodeID, e amcast.Envelope) Time {
		return 1000
	}))
	a, b := amcast.NodeID(1), amcast.NodeID(2)
	net.Register(b, rxHandler(&rx, s))
	net.Send(a, b, fenv(1))
	// Crash at 500µs: the envelope arrived at 100µs and finishes
	// processing at 1100µs, mid-downtime.
	s.ScheduleAt(500, func() { net.CrashNode(b) })
	s.Run()
	if len(rx.got) != 0 || net.Parked(b) != 1 {
		t.Fatalf("handled=%d parked=%d, want 0/1", len(rx.got), net.Parked(b))
	}
	net.RestartNode(b)
	if len(rx.got) != 1 {
		t.Fatalf("restart flush handled %d, want 1", len(rx.got))
	}
}

func rxHandler(s *sink, sim *Simulator) Handler { return s.handler(sim) }

func ids(envs []amcast.Envelope) []uint64 {
	out := make([]uint64, len(envs))
	for i, e := range envs {
		out[i] = uint64(e.Msg.ID)
	}
	return out
}
