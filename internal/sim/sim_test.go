package sim

import (
	"testing"

	"flexcast/amcast"
)

func TestEventOrdering(t *testing.T) {
	s := New()
	var got []int
	s.Schedule(30, func() { got = append(got, 3) })
	s.Schedule(10, func() { got = append(got, 1) })
	s.Schedule(20, func() { got = append(got, 2) })
	s.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("execution order = %v", got)
	}
	if s.Now() != 30 {
		t.Fatalf("Now = %d, want 30", s.Now())
	}
	if s.Steps() != 3 {
		t.Fatalf("Steps = %d, want 3", s.Steps())
	}
}

func TestSimultaneousEventsFIFO(t *testing.T) {
	s := New()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.Schedule(5, func() { got = append(got, i) })
	}
	s.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("simultaneous events reordered: %v", got)
		}
	}
}

func TestNegativeDelayClamped(t *testing.T) {
	s := New()
	fired := false
	s.Schedule(10, func() {
		s.Schedule(-5, func() { fired = true })
	})
	s.Run()
	if !fired || s.Now() != 10 {
		t.Fatalf("fired=%v now=%d", fired, s.Now())
	}
}

func TestRunUntilLeavesFutureEvents(t *testing.T) {
	s := New()
	count := 0
	s.Schedule(10, func() { count++ })
	s.Schedule(100, func() { count++ })
	s.RunUntil(50)
	if count != 1 || s.Now() != 50 || s.Pending() != 1 {
		t.Fatalf("count=%d now=%d pending=%d", count, s.Now(), s.Pending())
	}
	s.RunFor(50)
	if count != 2 || s.Now() != 100 {
		t.Fatalf("after RunFor: count=%d now=%d", count, s.Now())
	}
}

func TestNestedScheduling(t *testing.T) {
	s := New()
	depth := 0
	var rec func()
	rec = func() {
		depth++
		if depth < 100 {
			s.Schedule(1, rec)
		}
	}
	s.Schedule(0, rec)
	s.Run()
	if depth != 100 || s.Now() != 99 {
		t.Fatalf("depth=%d now=%d", depth, s.Now())
	}
}

// --- network tests ---

type collector struct {
	at   []Time
	envs []amcast.Envelope
	s    *Simulator
}

func (c *collector) HandleEnvelope(env amcast.Envelope) {
	c.at = append(c.at, c.s.Now())
	c.envs = append(c.envs, env)
}

func env(kind amcast.Kind, id uint64) amcast.Envelope {
	return amcast.Envelope{Kind: kind, Msg: amcast.Message{ID: amcast.MsgID(id), Dst: []amcast.GroupID{2}}}
}

func TestNetworkLatency(t *testing.T) {
	s := New()
	n := NewNetwork(s, func(from, to amcast.NodeID) Time { return 500 })
	c := &collector{s: s}
	n.Register(amcast.GroupNode(2), c)
	n.Send(amcast.GroupNode(1), amcast.GroupNode(2), env(amcast.KindFwd, 1))
	s.Run()
	if len(c.at) != 1 || c.at[0] != 500 {
		t.Fatalf("arrivals = %v, want [500]", c.at)
	}
}

func TestNetworkFIFOClampUnderJitter(t *testing.T) {
	s := New()
	// Decreasing jitter would reorder back-to-back sends without the clamp.
	jitters := []Time{1000, 0}
	i := 0
	n := NewNetwork(s,
		func(from, to amcast.NodeID) Time { return 100 },
		WithJitter(func(from, to amcast.NodeID) Time {
			j := jitters[i%len(jitters)]
			i++
			return j
		}))
	c := &collector{s: s}
	n.Register(amcast.GroupNode(2), c)
	n.Send(amcast.GroupNode(1), amcast.GroupNode(2), env(amcast.KindFwd, 1))
	n.Send(amcast.GroupNode(1), amcast.GroupNode(2), env(amcast.KindFwd, 2))
	s.Run()
	if len(c.envs) != 2 || c.envs[0].Msg.ID != 1 || c.envs[1].Msg.ID != 2 {
		t.Fatalf("FIFO violated: %v %v", c.envs[0].Msg.ID, c.envs[1].Msg.ID)
	}
	if c.at[0] != 1100 || c.at[1] != 1100 {
		t.Fatalf("clamped arrivals = %v, want [1100 1100]", c.at)
	}
}

func TestNetworkWithoutFIFOReorders(t *testing.T) {
	s := New()
	jitters := []Time{1000, 0}
	i := 0
	n := NewNetwork(s,
		func(from, to amcast.NodeID) Time { return 100 },
		WithJitter(func(from, to amcast.NodeID) Time {
			j := jitters[i%len(jitters)]
			i++
			return j
		}),
		WithoutFIFO())
	c := &collector{s: s}
	n.Register(amcast.GroupNode(2), c)
	n.Send(amcast.GroupNode(1), amcast.GroupNode(2), env(amcast.KindFwd, 1))
	n.Send(amcast.GroupNode(1), amcast.GroupNode(2), env(amcast.KindFwd, 2))
	s.Run()
	if c.envs[0].Msg.ID != 2 {
		t.Fatalf("expected reordering without FIFO clamp, got %v first", c.envs[0].Msg.ID)
	}
}

func TestNetworkSerialProcessing(t *testing.T) {
	s := New()
	n := NewNetwork(s,
		func(from, to amcast.NodeID) Time { return 10 },
		WithProcCost(func(node amcast.NodeID, e amcast.Envelope) Time { return 100 }))
	c := &collector{s: s}
	n.Register(amcast.GroupNode(2), c)
	// Three simultaneous arrivals queue serially: handled at 110, 210, 310.
	for i := 0; i < 3; i++ {
		n.Send(amcast.GroupNode(1), amcast.GroupNode(2), env(amcast.KindFwd, uint64(i)))
	}
	s.Run()
	want := []Time{110, 210, 310}
	for i, at := range c.at {
		if at != want[i] {
			t.Fatalf("handle times = %v, want %v", c.at, want)
		}
	}
}

func TestNetworkPartitionDropsAndHeals(t *testing.T) {
	s := New()
	n := NewNetwork(s, func(from, to amcast.NodeID) Time { return 10 })
	c := &collector{s: s}
	n.Register(amcast.GroupNode(2), c)
	n.Partition(amcast.GroupNode(1), amcast.GroupNode(2))
	n.Send(amcast.GroupNode(1), amcast.GroupNode(2), env(amcast.KindFwd, 1))
	s.Run()
	if len(c.envs) != 0 || n.Dropped() != 1 {
		t.Fatalf("partitioned send delivered (dropped=%d)", n.Dropped())
	}
	n.Heal(amcast.GroupNode(1), amcast.GroupNode(2))
	n.Send(amcast.GroupNode(1), amcast.GroupNode(2), env(amcast.KindFwd, 2))
	s.Run()
	if len(c.envs) != 1 || c.envs[0].Msg.ID != 2 {
		t.Fatal("healed link did not deliver")
	}
}

func TestNetworkHooks(t *testing.T) {
	s := New()
	var sent, handled int
	n := NewNetwork(s, func(from, to amcast.NodeID) Time { return 1 },
		WithSendHook(func(from, to amcast.NodeID, e amcast.Envelope) { sent++ }),
		WithHandleHook(func(from, to amcast.NodeID, e amcast.Envelope) { handled++ }))
	n.Register(amcast.GroupNode(2), HandlerFunc(func(e amcast.Envelope) {}))
	n.Send(amcast.GroupNode(1), amcast.GroupNode(2), env(amcast.KindFwd, 1))
	s.Run()
	if sent != 1 || handled != 1 {
		t.Fatalf("sent=%d handled=%d", sent, handled)
	}
}

func TestNetworkDoubleRegisterPanics(t *testing.T) {
	s := New()
	n := NewNetwork(s, func(from, to amcast.NodeID) Time { return 1 })
	n.Register(amcast.GroupNode(1), HandlerFunc(func(e amcast.Envelope) {}))
	defer func() {
		if recover() == nil {
			t.Fatal("double register did not panic")
		}
	}()
	n.Register(amcast.GroupNode(1), HandlerFunc(func(e amcast.Envelope) {}))
}

func TestNetworkUnregisteredDestinationPanics(t *testing.T) {
	s := New()
	n := NewNetwork(s, func(from, to amcast.NodeID) Time { return 1 })
	n.Send(amcast.GroupNode(1), amcast.GroupNode(2), env(amcast.KindFwd, 1))
	defer func() {
		if recover() == nil {
			t.Fatal("unregistered destination did not panic")
		}
	}()
	s.Run()
}
