// Package codec provides the deterministic binary wire encoding of
// protocol envelopes. It serves two purposes: framing for the TCP runtime
// (internal/transport) and exact message-size accounting for the
// communication-cost experiments (paper Figure 8), which is why Size
// computes the encoded length without allocating.
//
// Layout (all integers are unsigned varints unless noted):
//
//	kind(1 byte) | from | msg | [payload] | [hist] | [certEpoch] | [notifList] | [ackCovers] | [ts tsFrom] | [result] | [watermark] | [value]
//	msg   = id | sender | flags(1 byte) | [session] | nDst | dst...
//	hist  = nNodes | (id nDst dst...)... | nEdges | (from to)...
//	notifList = nPairs | (notifier notified epoch)...
//	ackCovers = nCovers | (notifier epoch)...
//
// certEpoch appears on NOTIF envelopes only and must be ≥ 1 — it is the
// certification epoch that makes a re-NOTIF carrying a fresh edge
// distinguishable from a duplicate (DESIGN.md §4 deviation 8). Pair and
// cover epochs must also be ≥ 1, pairs must be strictly ascending by
// (notifier, notified) and covers strictly ascending by notifier — the
// normalized order the engine always sends — so exactly one byte string
// encodes any accepted list. result and watermark appear on REPLY
// envelopes; value (zigzag varint) appears on REPLY envelopes whose
// message carries FlagRead — the read-result leg of the KindRead path.
// Section presence is always a function of bytes decoded earlier in the
// frame, keeping the encoding canonical.
//
// session appears in the message section iff the flags byte (decoded
// just before it) carries FlagSession, and must be ≥ 1 — the session id
// a multiplexed client connection stamps on its messages so replies
// demultiplex to the right logical session. A set flag with session 0
// is rejected as non-canonical; an absent flag with a session varint
// present decodes the varint as the destination count and fails (or
// leaves trailing bytes), so exactly one byte string encodes any
// accepted message.
//
// Optional sections are present only for the envelope kinds that use them,
// keeping auxiliary messages (ACK/NOTIF/TS/REPLY) small, as in the paper's
// prototypes.
package codec

import (
	"encoding/binary"
	"fmt"

	"flexcast/amcast"
)

func hasPayload(k amcast.Kind) bool { return k.IsPayload() }

func hasHist(k amcast.Kind) bool {
	return k == amcast.KindMsg || k == amcast.KindAck || k == amcast.KindNotif
}

func hasNotifList(k amcast.Kind) bool {
	return k == amcast.KindMsg || k == amcast.KindAck
}

func hasAckCovers(k amcast.Kind) bool {
	return k == amcast.KindAck
}

func hasCertEpoch(k amcast.Kind) bool {
	return k == amcast.KindNotif
}

func hasTS(k amcast.Kind) bool {
	return k == amcast.KindTS || k == amcast.KindReply || k == amcast.KindRead
}

func hasResult(k amcast.Kind) bool {
	return k == amcast.KindReply
}

func hasWatermark(k amcast.Kind) bool {
	return k == amcast.KindReply
}

// hasValue reports whether the envelope carries a read result value:
// only replies answering a KindRead transaction do. Presence is a
// function of bytes decoded earlier in the frame (kind, then the
// message flags), so the encoding stays canonical.
func hasValue(k amcast.Kind, flags amcast.MsgFlags) bool {
	return k == amcast.KindReply && flags&amcast.FlagRead != 0
}

// zigzag maps a signed value to an unsigned varint-friendly one
// (identical to protobuf's sint64 mapping).
func zigzag(v int64) uint64 { return uint64(v<<1) ^ uint64(v>>63) }

func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// Marshal encodes an envelope.
func Marshal(env amcast.Envelope) []byte {
	return Append(make([]byte, 0, Size(env)), env)
}

func appendMessage(buf []byte, m amcast.Message, payload bool) []byte {
	buf = binary.AppendUvarint(buf, uint64(m.ID))
	buf = binary.AppendUvarint(buf, uint64(uint32(m.Sender)))
	buf = append(buf, byte(m.Flags))
	if m.Flags&amcast.FlagSession != 0 {
		buf = binary.AppendUvarint(buf, m.Session)
	}
	buf = binary.AppendUvarint(buf, uint64(len(m.Dst)))
	for _, g := range m.Dst {
		buf = binary.AppendUvarint(buf, uint64(uint32(g)))
	}
	if payload {
		buf = binary.AppendUvarint(buf, uint64(len(m.Payload)))
		buf = append(buf, m.Payload...)
	}
	return buf
}

func appendHist(buf []byte, d *amcast.HistDelta) []byte {
	if d == nil {
		buf = binary.AppendUvarint(buf, 0)
		buf = binary.AppendUvarint(buf, 0)
		return buf
	}
	buf = binary.AppendUvarint(buf, uint64(len(d.Nodes)))
	for _, n := range d.Nodes {
		buf = binary.AppendUvarint(buf, uint64(n.ID))
		buf = binary.AppendUvarint(buf, uint64(len(n.Dst)))
		for _, g := range n.Dst {
			buf = binary.AppendUvarint(buf, uint64(uint32(g)))
		}
	}
	buf = binary.AppendUvarint(buf, uint64(len(d.Edges)))
	for _, e := range d.Edges {
		buf = binary.AppendUvarint(buf, uint64(e.From))
		buf = binary.AppendUvarint(buf, uint64(e.To))
	}
	return buf
}

// Size returns len(Marshal(env)) without allocating. The message-cost
// experiments call it on every transmission.
func Size(env amcast.Envelope) int {
	n := 1 + uvarintLen(uint64(uint32(env.From)))
	n += messageSize(env.Msg, hasPayload(env.Kind))
	if hasHist(env.Kind) {
		n += histSize(env.Hist)
	}
	if hasCertEpoch(env.Kind) {
		n += uvarintLen(env.CertEpoch)
	}
	if hasNotifList(env.Kind) {
		n += uvarintLen(uint64(len(env.NotifList)))
		for _, p := range env.NotifList {
			n += uvarintLen(uint64(uint32(p.Notifier))) + uvarintLen(uint64(uint32(p.Notified))) + uvarintLen(p.Epoch)
		}
	}
	if hasAckCovers(env.Kind) {
		n += uvarintLen(uint64(len(env.AckCovers)))
		for _, c := range env.AckCovers {
			n += uvarintLen(uint64(uint32(c.Notifier))) + uvarintLen(c.Epoch)
		}
	}
	if hasTS(env.Kind) {
		n += uvarintLen(env.TS) + uvarintLen(uint64(uint32(env.TSFrom)))
	}
	if hasResult(env.Kind) {
		n++
	}
	if hasWatermark(env.Kind) {
		n += uvarintLen(env.Watermark)
	}
	if hasValue(env.Kind, env.Msg.Flags) {
		n += uvarintLen(zigzag(env.Value))
	}
	return n
}

func messageSize(m amcast.Message, payload bool) int {
	n := uvarintLen(uint64(m.ID)) + uvarintLen(uint64(uint32(m.Sender))) + 1
	if m.Flags&amcast.FlagSession != 0 {
		n += uvarintLen(m.Session)
	}
	n += uvarintLen(uint64(len(m.Dst)))
	for _, g := range m.Dst {
		n += uvarintLen(uint64(uint32(g)))
	}
	if payload {
		n += uvarintLen(uint64(len(m.Payload))) + len(m.Payload)
	}
	return n
}

func histSize(d *amcast.HistDelta) int {
	if d == nil {
		return 2 // two zero counts
	}
	n := uvarintLen(uint64(len(d.Nodes)))
	for _, hn := range d.Nodes {
		n += uvarintLen(uint64(hn.ID))
		n += uvarintLen(uint64(len(hn.Dst)))
		for _, g := range hn.Dst {
			n += uvarintLen(uint64(uint32(g)))
		}
	}
	n += uvarintLen(uint64(len(d.Edges)))
	for _, e := range d.Edges {
		n += uvarintLen(uint64(e.From)) + uvarintLen(uint64(e.To))
	}
	return n
}

func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// decoder is a cursor over an encoded envelope.
type decoder struct {
	buf []byte
	off int
	err error
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		d.err = fmt.Errorf("codec: truncated varint at offset %d", d.off)
		return 0
	}
	if n != uvarintLen(v) {
		// Reject non-minimal encodings: the wire format is canonical
		// (exactly one byte string per envelope), which the round-trip
		// fuzzer relies on and which keeps Size exact.
		d.err = fmt.Errorf("codec: non-minimal varint at offset %d", d.off)
		return 0
	}
	d.off += n
	return v
}

// uvarint32 decodes a varint that must fit 32 bits (group and node
// ids). Oversized values are rejected rather than truncated, so every
// accepted frame re-encodes to exactly the same bytes (canonical
// encoding — the round-trip property the fuzzer checks).
func (d *decoder) uvarint32() uint32 {
	v := d.uvarint()
	if d.err == nil && v > 0xFFFFFFFF {
		d.err = fmt.Errorf("codec: 32-bit field overflow (%d)", v)
		return 0
	}
	return uint32(v)
}

func (d *decoder) byte() byte {
	if d.err != nil {
		return 0
	}
	if d.off >= len(d.buf) {
		d.err = fmt.Errorf("codec: truncated byte at offset %d", d.off)
		return 0
	}
	b := d.buf[d.off]
	d.off++
	return b
}

func (d *decoder) bytes(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || d.off+n > len(d.buf) {
		d.err = fmt.Errorf("codec: truncated %d bytes at offset %d", n, d.off)
		return nil
	}
	b := d.buf[d.off : d.off+n : d.off+n]
	d.off += n
	return b
}

// maxCount bounds decoded collection lengths to guard against corrupt or
// hostile frames.
const maxCount = 1 << 22

func (d *decoder) count() int {
	v := d.uvarint()
	if v > maxCount {
		d.err = fmt.Errorf("codec: count %d exceeds limit", v)
		return 0
	}
	return int(v)
}

func (d *decoder) groups(n int) []amcast.GroupID {
	if n == 0 {
		return nil
	}
	gs := make([]amcast.GroupID, n)
	for i := range gs {
		gs[i] = amcast.GroupID(d.uvarint32())
	}
	return gs
}

// pairs decodes a notification-pair list, enforcing the canonical form
// the engine always sends: strictly ascending by (notifier, notified)
// — so a duplicated pair can never smuggle in a second epoch — and
// every certification epoch ≥ 1.
func (d *decoder) pairs(n int) []amcast.NotifPair {
	if n == 0 {
		return nil
	}
	ps := make([]amcast.NotifPair, n)
	for i := range ps {
		ps[i].Notifier = amcast.GroupID(d.uvarint32())
		ps[i].Notified = amcast.GroupID(d.uvarint32())
		ps[i].Epoch = d.uvarint()
		if d.err != nil {
			return ps
		}
		if ps[i].Epoch == 0 {
			d.err = fmt.Errorf("codec: notif pair %d has epoch 0", i)
			return ps
		}
		if i > 0 && !pairLess(ps[i-1], ps[i]) {
			d.err = fmt.Errorf("codec: notif pairs not strictly ordered at %d", i)
			return ps
		}
	}
	return ps
}

func pairLess(a, b amcast.NotifPair) bool {
	if a.Notifier != b.Notifier {
		return a.Notifier < b.Notifier
	}
	return a.Notified < b.Notified
}

// covers decodes a flush ack's cover list, enforcing strictly
// ascending notifiers and epochs ≥ 1 (canonical form).
func (d *decoder) covers(n int) []amcast.AckCover {
	if n == 0 {
		return nil
	}
	cs := make([]amcast.AckCover, n)
	for i := range cs {
		cs[i].Notifier = amcast.GroupID(d.uvarint32())
		cs[i].Epoch = d.uvarint()
		if d.err != nil {
			return cs
		}
		if cs[i].Epoch == 0 {
			d.err = fmt.Errorf("codec: ack cover %d has epoch 0", i)
			return cs
		}
		if i > 0 && cs[i-1].Notifier >= cs[i].Notifier {
			d.err = fmt.Errorf("codec: ack covers not strictly ordered at %d", i)
			return cs
		}
	}
	return cs
}

// Unmarshal decodes an envelope, validating structure and rejecting
// trailing garbage.
func Unmarshal(buf []byte) (amcast.Envelope, error) {
	d := &decoder{buf: buf}
	var env amcast.Envelope
	env.Kind = amcast.Kind(d.byte())
	if d.err == nil {
		switch env.Kind {
		case amcast.KindRequest, amcast.KindMsg, amcast.KindAck, amcast.KindNotif,
			amcast.KindTS, amcast.KindFwd, amcast.KindReply, amcast.KindRead:
		default:
			return env, fmt.Errorf("codec: unknown envelope kind %d", env.Kind)
		}
	}
	env.From = amcast.NodeID(d.uvarint32())
	env.Msg = d.message(hasPayload(env.Kind))
	if hasHist(env.Kind) {
		env.Hist = d.hist()
	}
	if hasCertEpoch(env.Kind) {
		env.CertEpoch = d.uvarint()
		if d.err == nil && env.CertEpoch == 0 {
			return env, fmt.Errorf("codec: NOTIF certification epoch 0")
		}
	}
	if hasNotifList(env.Kind) {
		env.NotifList = d.pairs(d.count())
	}
	if hasAckCovers(env.Kind) {
		env.AckCovers = d.covers(d.count())
	}
	if hasTS(env.Kind) {
		env.TS = d.uvarint()
		env.TSFrom = amcast.GroupID(d.uvarint32())
	}
	if hasResult(env.Kind) {
		env.Result = d.byte()
	}
	if hasWatermark(env.Kind) {
		env.Watermark = d.uvarint()
	}
	if hasValue(env.Kind, env.Msg.Flags) {
		env.Value = unzigzag(d.uvarint())
	}
	if d.err != nil {
		return env, d.err
	}
	if d.off != len(buf) {
		return env, fmt.Errorf("codec: %d trailing bytes", len(buf)-d.off)
	}
	return env, nil
}

func (d *decoder) message(payload bool) amcast.Message {
	var m amcast.Message
	m.ID = amcast.MsgID(d.uvarint())
	m.Sender = amcast.NodeID(d.uvarint32())
	m.Flags = amcast.MsgFlags(d.byte())
	if m.Flags&amcast.FlagSession != 0 {
		m.Session = d.uvarint()
		if d.err == nil && m.Session == 0 {
			d.err = fmt.Errorf("codec: FlagSession set with session id 0")
			return m
		}
	}
	m.Dst = d.groups(d.count())
	if payload {
		m.Payload = d.bytes(d.count())
	}
	return m
}

func (d *decoder) hist() *amcast.HistDelta {
	nNodes := d.count()
	if d.err != nil {
		return nil
	}
	var h *amcast.HistDelta
	if nNodes > 0 {
		h = &amcast.HistDelta{Nodes: make([]amcast.HistNode, nNodes)}
		for i := range h.Nodes {
			h.Nodes[i].ID = amcast.MsgID(d.uvarint())
			h.Nodes[i].Dst = d.groups(d.count())
		}
	}
	nEdges := d.count()
	if d.err != nil {
		return h
	}
	if nEdges > 0 {
		if h == nil {
			h = &amcast.HistDelta{}
		}
		h.Edges = make([]amcast.HistEdge, nEdges)
		for i := range h.Edges {
			h.Edges[i].From = amcast.MsgID(d.uvarint())
			h.Edges[i].To = amcast.MsgID(d.uvarint())
		}
	}
	return h
}
