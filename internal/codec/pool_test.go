package codec

import (
	"bytes"
	"reflect"
	"testing"

	"flexcast/amcast"
)

func TestFramePoolRoundTrip(t *testing.T) {
	f := GetFrame(100)
	if len(f.B) != 0 || cap(f.B) < 100 {
		t.Fatalf("GetFrame(100): len %d cap %d", len(f.B), cap(f.B))
	}
	f.B = append(f.B, 1, 2, 3)
	f.Release()
	again := GetFrame(10)
	if len(again.B) != 0 {
		t.Fatalf("recycled frame has len %d", len(again.B))
	}
	again.Release()

	// Oversized buffers are dropped, the wrapper recycled.
	big := GetFrame(maxPooledBuf + 1)
	big.B = big.B[:cap(big.B)]
	big.Release()

	SetPooling(false)
	defer SetPooling(true)
	if PoolingEnabled() {
		t.Fatal("SetPooling(false) did not disable pooling")
	}
	f2 := GetFrame(10)
	if len(f2.B) != 0 || cap(f2.B) < 10 {
		t.Fatalf("unpooled GetFrame: len %d cap %d", len(f2.B), cap(f2.B))
	}
	f2.Release() // must be a no-op, not a panic
}

// TestControlFrameDoesNotAlias proves the decode-path recycling is
// sound: a decoded control frame shares no bytes with its frame buffer,
// so clobbering the buffer after Release leaves the envelopes intact.
func TestControlFrameDoesNotAlias(t *testing.T) {
	envs := []amcast.Envelope{
		{Kind: amcast.KindAck, From: amcast.GroupNode(2),
			Msg:       amcast.Message{ID: 7, Sender: amcast.ClientNode(0), Dst: []amcast.GroupID{1, 2}},
			Hist:      &amcast.HistDelta{Nodes: []amcast.HistNode{{ID: 7, Dst: []amcast.GroupID{1, 2}}}},
			NotifList: []amcast.NotifPair{{Notifier: 1, Notified: 3, Epoch: 1}},
			AckCovers: []amcast.AckCover{{Notifier: 1, Epoch: 1}}},
		{Kind: amcast.KindTS, From: amcast.GroupNode(3),
			Msg: amcast.Message{ID: 9, Sender: amcast.ClientNode(1), Dst: []amcast.GroupID{3}},
			TS:  42, TSFrom: 3},
	}
	frame := MarshalBatch(envs)
	f := GetFrame(len(frame))
	f.B = append(f.B, frame...)
	decoded, err := DecodeFrame(f.B)
	if err != nil {
		t.Fatal(err)
	}
	if FrameAliases(decoded) {
		t.Fatal("control frame reported as aliasing")
	}
	for i := range f.B {
		f.B[i] = 0xFF
	}
	if !reflect.DeepEqual(decoded, envs) {
		t.Fatalf("decoded envelopes corrupted by buffer reuse:\n%+v\nwant\n%+v", decoded, envs)
	}
	f.Release()

	// A payload frame must report aliasing (the buffer stays owned).
	pay := []amcast.Envelope{{Kind: amcast.KindMsg, From: amcast.GroupNode(1),
		Msg: amcast.Message{ID: 1, Sender: amcast.ClientNode(0), Dst: []amcast.GroupID{1},
			Payload: []byte("hello")}}}
	pframe := MarshalBatch(pay)
	pdec, err := DecodeFrame(pframe)
	if err != nil {
		t.Fatal(err)
	}
	if !FrameAliases(pdec) {
		t.Fatal("payload frame not reported as aliasing")
	}
	if !bytes.Equal(pdec[0].Msg.Payload, []byte("hello")) {
		t.Fatal("payload corrupted")
	}
}

// TestDetachPayloads verifies the oversized-buffer escape hatch: after
// detaching, the envelopes share nothing with the frame.
func TestDetachPayloads(t *testing.T) {
	pay := []amcast.Envelope{{Kind: amcast.KindMsg, From: amcast.GroupNode(1),
		Msg: amcast.Message{ID: 1, Sender: amcast.ClientNode(0), Dst: []amcast.GroupID{1},
			Payload: []byte("hello")}}}
	frame := MarshalBatch(pay)
	decoded, err := DecodeFrame(frame)
	if err != nil {
		t.Fatal(err)
	}
	DetachPayloads(decoded)
	for i := range frame {
		frame[i] = 0xAA
	}
	if !bytes.Equal(decoded[0].Msg.Payload, []byte("hello")) {
		t.Fatalf("detached payload corrupted by frame reuse: %q", decoded[0].Msg.Payload)
	}
}

func TestAppendBatchMatchesMarshalBatch(t *testing.T) {
	envs := []amcast.Envelope{
		{Kind: amcast.KindRequest, From: amcast.ClientNode(0),
			Msg: amcast.Message{ID: 3, Sender: amcast.ClientNode(0), Dst: []amcast.GroupID{1, 4}, Payload: []byte{1, 2}}},
		{Kind: amcast.KindAck, From: amcast.GroupNode(4),
			Msg: amcast.Message{ID: 3, Sender: amcast.ClientNode(0), Dst: []amcast.GroupID{1, 4}}},
	}
	want := MarshalBatch(envs)
	f := GetFrame(BatchSize(envs))
	f.B = AppendBatch(f.B, envs)
	if !bytes.Equal(f.B, want) {
		t.Fatalf("AppendBatch != MarshalBatch:\n%x\n%x", f.B, want)
	}
	if len(f.B) != BatchSize(envs) {
		t.Fatalf("BatchSize %d != encoded length %d", BatchSize(envs), len(f.B))
	}
	f.Release()
}
