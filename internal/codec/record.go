// Record-level encoding helpers for snapshot serialization: the engine
// packages (internal/core, internal/skeen, internal/hierarchical) and
// the store encode their amcast.BinarySnapshot implementations with the
// same uvarint conventions the wire codec uses, reusing the message
// layout so a snapshot's embedded messages are byte-identical to their
// wire form. A Reader is the decoding cursor; it carries the error so
// callers chain reads and check once.
package codec

import (
	"encoding/binary"
	"fmt"

	"flexcast/amcast"
)

// AppendMessage appends the canonical encoding of m, payload included
// (the message layout of the wire codec's REQUEST/MSG envelopes).
func AppendMessage(buf []byte, m amcast.Message) []byte {
	return appendMessage(buf, m, true)
}

// AppendDelivery appends one delivery: the message (with payload)
// followed by the group, sequence, result and watermark fields.
func AppendDelivery(buf []byte, d amcast.Delivery) []byte {
	buf = appendMessage(buf, d.Msg, true)
	buf = binary.AppendUvarint(buf, uint64(uint32(d.Group)))
	buf = binary.AppendUvarint(buf, d.Seq)
	buf = append(buf, d.Result)
	buf = binary.AppendUvarint(buf, d.Watermark)
	return buf
}

// AppendBool appends a bool as one byte (0 or 1).
func AppendBool(buf []byte, v bool) []byte {
	if v {
		return append(buf, 1)
	}
	return append(buf, 0)
}

// Reader is a decoding cursor over a snapshot record encoded with the
// Append* helpers. All methods are no-ops once an error is latched;
// check Err (or call Close) after the final read.
type Reader struct {
	d decoder
}

// NewReader returns a cursor over buf.
func NewReader(buf []byte) *Reader { return &Reader{d: decoder{buf: buf}} }

// Err returns the first decoding error, if any.
func (r *Reader) Err() error { return r.d.err }

// Close verifies the record was consumed exactly (no trailing bytes)
// and returns the first error.
func (r *Reader) Close() error {
	if r.d.err != nil {
		return r.d.err
	}
	if r.d.off != len(r.d.buf) {
		return fmt.Errorf("codec: %d trailing bytes in record", len(r.d.buf)-r.d.off)
	}
	return nil
}

// Uvarint decodes one unsigned varint.
func (r *Reader) Uvarint() uint64 { return r.d.uvarint() }

// Byte decodes one raw byte.
func (r *Reader) Byte() byte { return r.d.byte() }

// Bool decodes one AppendBool byte.
func (r *Reader) Bool() bool { return r.d.byte() != 0 }

// Count decodes a collection length, bounded against corrupt records.
func (r *Reader) Count() int { return r.d.count() }

// BytesN decodes n raw bytes (a sub-record whose length came first).
func (r *Reader) BytesN(n int) []byte { return r.d.bytes(n) }

// Message decodes one AppendMessage record.
func (r *Reader) Message() amcast.Message { return r.d.message(true) }

// Delivery decodes one AppendDelivery record.
func (r *Reader) Delivery() amcast.Delivery {
	var d amcast.Delivery
	d.Msg = r.d.message(true)
	d.Group = amcast.GroupID(r.d.uvarint32())
	d.Seq = r.d.uvarint()
	d.Result = r.d.byte()
	d.Watermark = r.d.uvarint()
	return d
}

// Groups decodes a count-prefixed group list.
func (r *Reader) Groups() []amcast.GroupID { return r.d.groups(r.d.count()) }

// AppendGroups appends a count-prefixed group list.
func AppendGroups(buf []byte, gs []amcast.GroupID) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(gs)))
	for _, g := range gs {
		buf = binary.AppendUvarint(buf, uint64(uint32(g)))
	}
	return buf
}
