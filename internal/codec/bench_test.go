package codec

import (
	"testing"

	"flexcast/amcast"
)

// benchBatch builds a representative runtime batch: mostly control
// envelopes (the FlexCast steady-state mix) plus a few payload messages.
func benchBatch(n int) []amcast.Envelope {
	envs := make([]amcast.Envelope, n)
	for i := range envs {
		switch i % 4 {
		case 0:
			envs[i] = amcast.Envelope{Kind: amcast.KindMsg, From: amcast.GroupNode(1),
				Msg: amcast.Message{ID: amcast.MsgID(i + 1), Sender: amcast.ClientNode(0),
					Dst: []amcast.GroupID{1, 2}, Payload: make([]byte, 64)}}
		default:
			envs[i] = amcast.Envelope{Kind: amcast.KindAck, From: amcast.GroupNode(2),
				Msg:       amcast.Message{ID: amcast.MsgID(i + 1), Sender: amcast.ClientNode(0), Dst: []amcast.GroupID{1, 2}},
				NotifList: []amcast.NotifPair{{Notifier: 1, Notified: 3, Epoch: 1}},
				AckCovers: []amcast.AckCover{{Notifier: 1, Epoch: 1}}}
		}
	}
	return envs
}

// controlBatch is the pure-control variant (ACK/TS only) whose decode
// path is allocation-free for the frame buffer.
func controlBatch(n int) []amcast.Envelope {
	envs := make([]amcast.Envelope, n)
	for i := range envs {
		envs[i] = amcast.Envelope{Kind: amcast.KindTS, From: amcast.GroupNode(2),
			Msg: amcast.Message{ID: amcast.MsgID(i + 1), Sender: amcast.ClientNode(0), Dst: []amcast.GroupID{1, 2}},
			TS:  uint64(i), TSFrom: 2}
	}
	return envs
}

// BenchmarkMarshalBatch is the unpooled encode baseline: one frame
// allocation per batch.
func BenchmarkMarshalBatch(b *testing.B) {
	envs := benchBatch(64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf := MarshalBatch(envs)
		_ = buf
	}
}

// BenchmarkAppendBatchPooled is the transport's send path: encode into
// a pooled frame, release it — zero allocations per frame.
func BenchmarkAppendBatchPooled(b *testing.B) {
	envs := benchBatch(64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := GetFrame(BatchSize(envs))
		f.B = AppendBatch(f.B, envs)
		f.Release()
	}
}

// BenchmarkDecodeControlAlloc is the unpooled decode baseline for a
// control frame: one frame-buffer allocation per frame plus the decoded
// structures.
func BenchmarkDecodeControlAlloc(b *testing.B) {
	frame := MarshalBatch(controlBatch(64))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf := make([]byte, len(frame))
		copy(buf, frame)
		if _, err := DecodeFrame(buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDecodeControlPooled mirrors the transport's read path: the
// frame buffer comes from the pool and recycles because control frames
// do not alias it.
func BenchmarkDecodeControlPooled(b *testing.B) {
	frame := MarshalBatch(controlBatch(64))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := GetFrame(len(frame))
		f.B = append(f.B, frame...)
		envs, err := DecodeFrame(f.B)
		if err != nil {
			b.Fatal(err)
		}
		if FrameAliases(envs) {
			f.Disown()
		} else {
			f.Release()
		}
	}
}
