package codec

import (
	"sync"
	"sync/atomic"

	"flexcast/amcast"
)

// Frame pooling for the encode/decode hot paths. Every wire frame used
// to cost one make([]byte, ...) on encode and one on decode; under
// sustained load that is two heap allocations (plus GC pressure) per
// batch. The transport borrows pooled frames here instead:
//
//   - encode: AppendBatch/Append into a pooled frame, write it, release
//     it — zero allocations per frame in steady state;
//   - decode: read the frame into a pooled buffer; if the decoded
//     envelopes do not alias it (control frames — the decoder only
//     retains sub-slices for message payloads), release frees both
//     wrapper and buffer for reuse. Payload frames Disown the buffer
//     (the envelopes own it now — exactly the allocation the unpooled
//     path made) and recycle just the wrapper.
//
// SetPooling(false) reverts to plain allocation — the benchmark A/B
// knob (flexload -no-pool) and a safety hatch.

// maxPooledBuf bounds the buffers kept by the pool: the occasional huge
// history diff should be returned to the GC, not pinned forever.
const maxPooledBuf = 64 << 10

var poolingOff atomic.Bool

// SetPooling toggles frame pooling globally (on by default). Intended
// for A/B measurement; safe to call at any time — outstanding pooled
// frames remain valid.
func SetPooling(on bool) { poolingOff.Store(!on) }

// PoolingEnabled reports whether frame pooling is active.
func PoolingEnabled() bool { return !poolingOff.Load() }

// Frame is a reusable wire-frame buffer. Use B for the frame bytes
// (GetFrame hands it out empty); call Release or Disown exactly once.
type Frame struct{ B []byte }

var framePool = sync.Pool{New: func() any { return &Frame{} }}

// GetFrame returns a frame whose buffer has len 0 and capacity at least
// n, drawn from the pool when possible. Fresh buffers are allocated at
// exactly n: a frame that ends up Disowned (its payloads alias it) then
// pins no more bytes than the unpooled path allocated, and the pool's
// resident sizes converge on the traffic's real frame sizes.
func GetFrame(n int) *Frame {
	if poolingOff.Load() {
		return &Frame{B: make([]byte, 0, n)}
	}
	f := framePool.Get().(*Frame)
	if cap(f.B) < n {
		f.B = make([]byte, 0, n)
	}
	f.B = f.B[:0]
	return f
}

// Release returns the frame — wrapper and buffer — to the pool. The
// caller must not touch the frame afterwards.
func (f *Frame) Release() {
	if poolingOff.Load() {
		return
	}
	if cap(f.B) > maxPooledBuf {
		f.B = nil // oversized: let the GC take the buffer, keep the wrapper
	}
	framePool.Put(f)
}

// Disown recycles only the wrapper: the buffer's ownership has moved to
// whatever was decoded from it (payload envelopes alias their frame).
func (f *Frame) Disown() {
	if poolingOff.Load() {
		return
	}
	f.B = nil
	framePool.Put(f)
}

// FrameAliases reports whether any decoded envelope retains sub-slices
// of the frame it was decoded from: the decoder copies every section
// except message payloads, so a frame without payload bytes (pure
// control traffic — ACK/NOTIF/TS/REPLY) can be released immediately.
func FrameAliases(envs []amcast.Envelope) bool {
	for i := range envs {
		if len(envs[i].Msg.Payload) > 0 {
			return true
		}
	}
	return false
}

// DetachPayloads copies every payload out of its frame buffer so the
// frame can be Released even though it decoded payload envelopes — the
// escape hatch for a payload frame that landed in a pooled buffer much
// larger than itself, where pinning the buffer would waste more than
// the copies cost.
func DetachPayloads(envs []amcast.Envelope) {
	for i := range envs {
		if len(envs[i].Msg.Payload) > 0 {
			envs[i].Msg.Payload = append([]byte(nil), envs[i].Msg.Payload...)
		}
	}
}
