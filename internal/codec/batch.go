package codec

import (
	"encoding/binary"
	"fmt"

	"flexcast/amcast"
)

// BatchKind is the discriminator byte of a batch frame. Envelope kinds
// occupy 1..7, so a receiver can tell a batch frame from a single
// envelope by its first byte, which is what keeps the TCP framing
// backward compatible: old frames are single envelopes, new frames may
// be batches.
const BatchKind byte = 0x40

// MaxBatchEnvelopes bounds the number of envelopes a single batch frame
// may carry. The runtime batcher never builds batches anywhere near this
// large; the limit guards the decoder against corrupt or hostile frames.
const MaxBatchEnvelopes = 1 << 16

// Batch layout (integers are unsigned varints):
//
//	BatchKind(1 byte) | count | (len envelope-bytes)...
//
// Each inner envelope is a complete Marshal encoding, length-prefixed so
// a decoder can skip through the frame without parsing. The encoding is
// canonical like the single-envelope format: minimal varints, count >= 1,
// and every inner envelope must itself decode canonically, so any
// accepted batch re-encodes to exactly the same bytes.

// MarshalBatch encodes a non-empty envelope batch as one frame.
func MarshalBatch(envs []amcast.Envelope) []byte {
	return AppendBatch(make([]byte, 0, BatchSize(envs)), envs)
}

// AppendBatch encodes a batch frame onto buf, equivalent to
// append(buf, MarshalBatch(envs)...) without the intermediate
// allocation — the transport's pooled-buffer encode path.
func AppendBatch(buf []byte, envs []amcast.Envelope) []byte {
	buf = append(buf, BatchKind)
	buf = binary.AppendUvarint(buf, uint64(len(envs)))
	for _, env := range envs {
		buf = binary.AppendUvarint(buf, uint64(Size(env)))
		buf = Append(buf, env)
	}
	return buf
}

// Append encodes env onto buf, equivalent to append(buf, Marshal(env)...)
// without the intermediate allocation.
func Append(buf []byte, env amcast.Envelope) []byte {
	buf = append(buf, byte(env.Kind))
	buf = binary.AppendUvarint(buf, uint64(uint32(env.From)))
	buf = appendMessage(buf, env.Msg, hasPayload(env.Kind))
	if hasHist(env.Kind) {
		buf = appendHist(buf, env.Hist)
	}
	if hasCertEpoch(env.Kind) {
		buf = binary.AppendUvarint(buf, env.CertEpoch)
	}
	if hasNotifList(env.Kind) {
		buf = binary.AppendUvarint(buf, uint64(len(env.NotifList)))
		for _, p := range env.NotifList {
			buf = binary.AppendUvarint(buf, uint64(uint32(p.Notifier)))
			buf = binary.AppendUvarint(buf, uint64(uint32(p.Notified)))
			buf = binary.AppendUvarint(buf, p.Epoch)
		}
	}
	if hasAckCovers(env.Kind) {
		buf = binary.AppendUvarint(buf, uint64(len(env.AckCovers)))
		for _, c := range env.AckCovers {
			buf = binary.AppendUvarint(buf, uint64(uint32(c.Notifier)))
			buf = binary.AppendUvarint(buf, c.Epoch)
		}
	}
	if hasTS(env.Kind) {
		buf = binary.AppendUvarint(buf, env.TS)
		buf = binary.AppendUvarint(buf, uint64(uint32(env.TSFrom)))
	}
	if hasResult(env.Kind) {
		buf = append(buf, env.Result)
	}
	if hasWatermark(env.Kind) {
		buf = binary.AppendUvarint(buf, env.Watermark)
	}
	if hasValue(env.Kind, env.Msg.Flags) {
		buf = binary.AppendUvarint(buf, zigzag(env.Value))
	}
	return buf
}

// BatchSize returns len(MarshalBatch(envs)) without allocating.
func BatchSize(envs []amcast.Envelope) int {
	n := 1 + uvarintLen(uint64(len(envs)))
	for _, env := range envs {
		s := Size(env)
		n += uvarintLen(uint64(s)) + s
	}
	return n
}

// IsBatch reports whether an encoded frame is a batch frame.
func IsBatch(buf []byte) bool {
	return len(buf) > 0 && buf[0] == BatchKind
}

// DecodeFrame decodes one frame — a batch or a single envelope,
// discriminated by the first byte. Every consumer of mixed frames (the
// TCP transport, Paxos decided values in internal/smr) goes through it,
// so frame discrimination lives in exactly one place.
func DecodeFrame(buf []byte) ([]amcast.Envelope, error) {
	if IsBatch(buf) {
		return UnmarshalBatch(buf)
	}
	env, err := Unmarshal(buf)
	if err != nil {
		return nil, err
	}
	return []amcast.Envelope{env}, nil
}

// UnmarshalBatch decodes a batch frame, validating structure, canonical
// inner encodings and the batch-size limit, and rejecting trailing
// garbage.
func UnmarshalBatch(buf []byte) ([]amcast.Envelope, error) {
	d := &decoder{buf: buf}
	if d.byte() != BatchKind {
		return nil, fmt.Errorf("codec: not a batch frame")
	}
	n := d.uvarint()
	if d.err != nil {
		return nil, d.err
	}
	if n == 0 {
		return nil, fmt.Errorf("codec: empty batch")
	}
	if n > MaxBatchEnvelopes {
		return nil, fmt.Errorf("codec: batch of %d envelopes exceeds limit %d", n, MaxBatchEnvelopes)
	}
	envs := make([]amcast.Envelope, 0, n)
	for i := uint64(0); i < n; i++ {
		size := d.uvarint()
		if d.err != nil {
			return nil, d.err
		}
		raw := d.bytes(int(size))
		if d.err != nil {
			return nil, d.err
		}
		env, err := Unmarshal(raw)
		if err != nil {
			return nil, fmt.Errorf("codec: batch envelope %d: %w", i, err)
		}
		envs = append(envs, env)
	}
	if d.off != len(buf) {
		return nil, fmt.Errorf("codec: %d trailing bytes after batch", len(buf)-d.off)
	}
	return envs, nil
}
