package codec

import (
	"bytes"
	"testing"

	"flexcast/amcast"
)

// FuzzUnmarshalRoundTrip asserts the codec's canonical-encoding
// property on arbitrary byte strings: any buffer that decodes must
// re-encode to exactly the same bytes (the encoding has no redundancy:
// varints are minimal and optional sections are determined by the
// envelope kind), and Size must agree with the wire length. Run with
// `go test -fuzz=FuzzUnmarshalRoundTrip ./internal/codec` to explore;
// the seed corpus below is exercised by plain `go test`.
func FuzzUnmarshalRoundTrip(f *testing.F) {
	seed := []amcast.Envelope{
		{Kind: amcast.KindRequest, From: amcast.ClientNode(2), Msg: amcast.Message{
			ID: amcast.NewMsgID(2, 9), Sender: amcast.ClientNode(2),
			Dst: []amcast.GroupID{1, 5}, Payload: []byte("tx"),
		}},
		{Kind: amcast.KindMsg, From: amcast.GroupNode(1), Msg: amcast.Message{
			ID: 3, Dst: []amcast.GroupID{1, 2}, Payload: []byte{0, 1, 2},
		}, Hist: &amcast.HistDelta{
			Nodes: []amcast.HistNode{{ID: 3, Dst: []amcast.GroupID{1, 2}}},
			Edges: []amcast.HistEdge{{From: 1, To: 3}},
		}, NotifList: []amcast.NotifPair{{Notifier: 1, Notified: 4, Epoch: 1}}},
		{Kind: amcast.KindAck, From: amcast.GroupNode(4), Msg: amcast.Message{
			ID: 3, Dst: []amcast.GroupID{1, 2},
		}, AckCovers: []amcast.AckCover{{Notifier: 1, Epoch: 1}, {Notifier: 2, Epoch: 3}}},
		{Kind: amcast.KindNotif, From: amcast.GroupNode(2), Msg: amcast.Message{
			ID: 3, Dst: []amcast.GroupID{1, 2},
		}, CertEpoch: 1},
		{Kind: amcast.KindNotif, From: amcast.GroupNode(2), Msg: amcast.Message{
			ID: 3, Dst: []amcast.GroupID{1, 2},
		}, CertEpoch: 2}, // re-certification of the same message
		{Kind: amcast.KindTS, From: amcast.GroupNode(9), Msg: amcast.Message{
			ID: 8, Dst: []amcast.GroupID{9},
		}, TS: 42, TSFrom: 9},
		{Kind: amcast.KindReply, From: amcast.GroupNode(5), Msg: amcast.Message{
			ID: 8, Dst: []amcast.GroupID{5},
		}, TS: 7, Result: amcast.ResultAborted, Watermark: 8},
		{Kind: amcast.KindRead, From: amcast.ClientNode(1), Msg: amcast.Message{
			ID: 11, Sender: amcast.ClientNode(1), Dst: []amcast.GroupID{3},
			Flags: amcast.FlagRead, Payload: []byte("ro"),
		}, TS: 5},
		{Kind: amcast.KindReply, From: amcast.GroupNode(3), Msg: amcast.Message{
			ID: 11, Sender: amcast.ClientNode(1), Dst: []amcast.GroupID{3},
			Flags: amcast.FlagRead,
		}, Result: amcast.ResultCommitted, Watermark: 6, Value: -1},
		{Kind: amcast.KindFwd, From: amcast.GroupNode(8), Msg: amcast.Message{
			ID: 1, Dst: []amcast.GroupID{8, 9}, Payload: []byte("fwd"),
		}},
		// Session-multiplexed request and its reply (the session-id
		// vocabulary: FlagSession gates a session varint ≥ 1 after flags).
		{Kind: amcast.KindRequest, From: amcast.ClientNode(7), Msg: amcast.Message{
			ID: amcast.NewMsgID(7, 3), Sender: amcast.ClientNode(7),
			Dst: []amcast.GroupID{2}, Flags: amcast.FlagSession, Session: 98765,
			Payload: []byte("mux"),
		}},
		{Kind: amcast.KindReply, From: amcast.GroupNode(2), Msg: amcast.Message{
			ID: amcast.NewMsgID(7, 3), Sender: amcast.ClientNode(7),
			Dst: []amcast.GroupID{2}, Flags: amcast.FlagSession, Session: 1,
		}, TS: 4, Result: amcast.ResultCommitted, Watermark: 5},
	}
	for _, env := range seed {
		f.Add(Marshal(env))
	}
	// Batch frames: the same canonical round-trip property must hold for
	// the batched encoding (strict inner framing, oversized rejection).
	f.Add(MarshalBatch(seed[:1]))
	f.Add(MarshalBatch(seed[:3]))
	f.Add(MarshalBatch(seed))
	// Malformed probes: truncations, bad kind, hostile counts, empty and
	// oversized batches.
	f.Add([]byte{})
	f.Add([]byte{0xEE})
	f.Add([]byte{byte(amcast.KindMsg), 0x01, 0x01, 0x01, 0x00, 0x01, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F})
	f.Add([]byte{BatchKind, 0x00})
	f.Add([]byte{BatchKind, 0xFF, 0xFF, 0xFF, 0x7F})

	f.Fuzz(func(t *testing.T, data []byte) {
		if IsBatch(data) {
			envs, err := UnmarshalBatch(data)
			if err != nil {
				return // rejected input: fine, as long as we did not panic
			}
			if len(envs) == 0 || len(envs) > MaxBatchEnvelopes {
				t.Fatalf("accepted batch of %d envelopes", len(envs))
			}
			re := MarshalBatch(envs)
			if !bytes.Equal(re, data) {
				t.Fatalf("batch round trip not canonical:\n in  %x\n out %x", data, re)
			}
			if got := BatchSize(envs); got != len(data) {
				t.Fatalf("BatchSize = %d, wire length = %d", got, len(data))
			}
			return
		}
		env, err := Unmarshal(data)
		if err != nil {
			return // rejected input: fine, as long as we did not panic
		}
		re := Marshal(env)
		if !bytes.Equal(re, data) {
			t.Fatalf("round trip not canonical:\n in  %x\n out %x\n env %+v", data, re, env)
		}
		if got := Size(env); got != len(data) {
			t.Fatalf("Size = %d, wire length = %d", got, len(data))
		}
	})
}
