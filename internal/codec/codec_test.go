package codec

import (
	"encoding/binary"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"flexcast/amcast"
)

func sampleEnvelopes() []amcast.Envelope {
	msg := amcast.Message{
		ID:      amcast.NewMsgID(3, 17),
		Sender:  amcast.ClientNode(3),
		Dst:     []amcast.GroupID{2, 5, 9},
		Payload: []byte("new-order payload"),
	}
	hist := &amcast.HistDelta{
		Nodes: []amcast.HistNode{
			{ID: 1, Dst: []amcast.GroupID{1, 2}},
			{ID: 2, Dst: nil},
		},
		Edges: []amcast.HistEdge{{From: 1, To: 2}},
	}
	return []amcast.Envelope{
		{Kind: amcast.KindRequest, From: amcast.ClientNode(3), Msg: msg},
		{Kind: amcast.KindMsg, From: amcast.GroupNode(2), Msg: msg, Hist: hist,
			NotifList: []amcast.NotifPair{{Notifier: 2, Notified: 4, Epoch: 1}, {Notifier: 2, Notified: 7, Epoch: 3}}},
		{Kind: amcast.KindAck, From: amcast.GroupNode(5), Msg: msg.Header(), Hist: hist,
			AckCovers: []amcast.AckCover{{Notifier: 2, Epoch: 1}, {Notifier: 3, Epoch: 2}}},
		{Kind: amcast.KindAck, From: amcast.GroupNode(5), Msg: msg.Header()}, // nil hist
		{Kind: amcast.KindNotif, From: amcast.GroupNode(2), Msg: msg.Header(), Hist: hist, CertEpoch: 1},
		{Kind: amcast.KindNotif, From: amcast.GroupNode(2), Msg: msg.Header(), CertEpoch: 7}, // re-certification
		{Kind: amcast.KindTS, From: amcast.GroupNode(9), Msg: msg.Header(), TS: 42, TSFrom: 9},
		{Kind: amcast.KindFwd, From: amcast.GroupNode(8), Msg: msg},
		{Kind: amcast.KindReply, From: amcast.GroupNode(5), Msg: msg.Header(), TS: 7,
			Result: amcast.ResultCommitted, Watermark: 8},
		{Kind: amcast.KindMsg, From: amcast.GroupNode(1), Msg: amcast.Message{
			ID: 1, Sender: amcast.ClientNode(0), Dst: []amcast.GroupID{1},
			Flags: amcast.FlagFlush,
		}},
		{Kind: amcast.KindRead, From: amcast.ClientNode(2), Msg: amcast.Message{
			ID: 9, Sender: amcast.ClientNode(2), Dst: []amcast.GroupID{4},
			Flags: amcast.FlagRead, Payload: []byte{1, 2, 3},
		}, TS: 17},
		{Kind: amcast.KindReply, From: amcast.GroupNode(4), Msg: amcast.Message{
			ID: 9, Sender: amcast.ClientNode(2), Dst: []amcast.GroupID{4},
			Flags: amcast.FlagRead,
		}, Result: amcast.ResultCommitted, Watermark: 17, Value: -1},
		{Kind: amcast.KindRequest, From: amcast.ClientNode(5), Msg: amcast.Message{
			ID: amcast.NewMsgID(5, 1), Sender: amcast.ClientNode(5),
			Dst: []amcast.GroupID{3}, Flags: amcast.FlagSession, Session: 1 << 18,
			Payload: []byte("mux"),
		}},
		{Kind: amcast.KindReply, From: amcast.GroupNode(3), Msg: amcast.Message{
			ID: amcast.NewMsgID(5, 1), Sender: amcast.ClientNode(5),
			Dst: []amcast.GroupID{3}, Flags: amcast.FlagSession, Session: 1,
		}, TS: 3, Result: amcast.ResultCommitted, Watermark: 4},
	}
}

// normalize maps an envelope to its decoded-equivalent form: fields not
// carried by the kind are cleared and empty slices match nil.
func normalize(e amcast.Envelope) amcast.Envelope {
	if !hasPayload(e.Kind) {
		e.Msg.Payload = nil
	}
	if !hasHist(e.Kind) {
		e.Hist = nil
	} else if e.Hist != nil && len(e.Hist.Nodes) == 0 && len(e.Hist.Edges) == 0 {
		e.Hist = nil
	}
	if !hasCertEpoch(e.Kind) {
		e.CertEpoch = 0
	}
	if !hasNotifList(e.Kind) || len(e.NotifList) == 0 {
		e.NotifList = nil
	}
	if !hasAckCovers(e.Kind) || len(e.AckCovers) == 0 {
		e.AckCovers = nil
	}
	if !hasTS(e.Kind) {
		e.TS = 0
		e.TSFrom = 0
	}
	if !hasResult(e.Kind) {
		e.Result = 0
	}
	if !hasWatermark(e.Kind) {
		e.Watermark = 0
	}
	if !hasValue(e.Kind, e.Msg.Flags) {
		e.Value = 0
	}
	if e.Msg.Flags&amcast.FlagSession == 0 {
		e.Msg.Session = 0
	}
	if len(e.Msg.Dst) == 0 {
		e.Msg.Dst = nil
	}
	if len(e.Msg.Payload) == 0 {
		e.Msg.Payload = nil
	}
	if e.Hist != nil {
		for i := range e.Hist.Nodes {
			if len(e.Hist.Nodes[i].Dst) == 0 {
				e.Hist.Nodes[i].Dst = nil
			}
		}
	}
	return e
}

func TestRoundTrip(t *testing.T) {
	for _, env := range sampleEnvelopes() {
		buf := Marshal(env)
		got, err := Unmarshal(buf)
		if err != nil {
			t.Fatalf("%s: %v", env.Kind, err)
		}
		want := normalize(env)
		got = normalize(got)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s round trip:\n got %+v\nwant %+v", env.Kind, got, want)
		}
	}
}

func TestSizeMatchesMarshal(t *testing.T) {
	for _, env := range sampleEnvelopes() {
		if got, want := Size(env), len(Marshal(env)); got != want {
			t.Fatalf("%s: Size = %d, Marshal length = %d", env.Kind, got, want)
		}
	}
}

func TestAuxiliaryMessagesAreSmallerThanPayload(t *testing.T) {
	envs := sampleEnvelopes()
	msgSize := Size(envs[1]) // MSG with payload and history
	tsSize := Size(envs[5])  // TS
	if tsSize >= msgSize {
		t.Fatalf("TS envelope (%d bytes) not smaller than MSG (%d bytes)", tsSize, msgSize)
	}
}

func TestUnmarshalErrors(t *testing.T) {
	valid := Marshal(sampleEnvelopes()[1])
	tests := []struct {
		name string
		buf  []byte
	}{
		{"empty", nil},
		{"unknown kind", []byte{0xEE, 0x01}},
		{"truncated", valid[:len(valid)/2]},
		{"trailing garbage", append(append([]byte{}, valid...), 0x00)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Unmarshal(tt.buf); err == nil {
				t.Fatalf("Unmarshal(%q) succeeded, want error", tt.buf)
			}
		})
	}
}

// TestRejectsNonCanonicalEpochSections covers the re-certification
// vocabulary: certification epochs are ≥ 1, notif pairs are strictly
// ordered by (notifier, notified) so a duplicated pair can never carry
// a second epoch, and ack covers are strictly ordered by notifier.
// Marshal encodes whatever it is given; the decoder is the gate.
func TestRejectsNonCanonicalEpochSections(t *testing.T) {
	hdr := amcast.Message{ID: amcast.NewMsgID(1, 1), Sender: amcast.ClientNode(1), Dst: []amcast.GroupID{2, 4}}
	msg := hdr
	msg.Payload = []byte("p")
	tests := []struct {
		name string
		env  amcast.Envelope
		want string
	}{
		{"notif cert epoch 0",
			amcast.Envelope{Kind: amcast.KindNotif, From: amcast.GroupNode(2), Msg: hdr},
			"certification epoch 0"},
		{"pair epoch 0",
			amcast.Envelope{Kind: amcast.KindMsg, From: amcast.GroupNode(2), Msg: msg,
				NotifList: []amcast.NotifPair{{Notifier: 2, Notified: 4}}},
			"epoch 0"},
		{"duplicate pair smuggling second epoch",
			amcast.Envelope{Kind: amcast.KindMsg, From: amcast.GroupNode(2), Msg: msg,
				NotifList: []amcast.NotifPair{{Notifier: 2, Notified: 4, Epoch: 1}, {Notifier: 2, Notified: 4, Epoch: 2}}},
			"not strictly ordered"},
		{"pairs out of order",
			amcast.Envelope{Kind: amcast.KindMsg, From: amcast.GroupNode(2), Msg: msg,
				NotifList: []amcast.NotifPair{{Notifier: 3, Notified: 4, Epoch: 1}, {Notifier: 2, Notified: 4, Epoch: 1}}},
			"not strictly ordered"},
		{"cover epoch 0",
			amcast.Envelope{Kind: amcast.KindAck, From: amcast.GroupNode(4), Msg: hdr,
				AckCovers: []amcast.AckCover{{Notifier: 2}}},
			"epoch 0"},
		{"duplicate cover",
			amcast.Envelope{Kind: amcast.KindAck, From: amcast.GroupNode(4), Msg: hdr,
				AckCovers: []amcast.AckCover{{Notifier: 2, Epoch: 1}, {Notifier: 2, Epoch: 2}}},
			"not strictly ordered"},
		{"covers out of order",
			amcast.Envelope{Kind: amcast.KindAck, From: amcast.GroupNode(4), Msg: hdr,
				AckCovers: []amcast.AckCover{{Notifier: 3, Epoch: 1}, {Notifier: 2, Epoch: 1}}},
			"not strictly ordered"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := Unmarshal(Marshal(tt.env))
			if err == nil {
				t.Fatalf("non-canonical envelope accepted")
			}
			if !strings.Contains(err.Error(), tt.want) {
				t.Fatalf("error %q does not mention %q", err, tt.want)
			}
		})
	}
}

// TestRejectsNonCanonicalSession covers the session-id vocabulary: the
// session varint is present iff the flags byte carries FlagSession, must
// be ≥ 1 and minimally encoded — so exactly one byte string encodes any
// accepted session-stamped message, and a flag-less frame can never
// smuggle a session section (the bytes decode as the destination count
// and fail or leave trailing garbage).
func TestRejectsNonCanonicalSession(t *testing.T) {
	// Hand-rolled REQUEST frame: kind | from | id | sender | flags |
	// [session] | nDst | dst | payloadLen.
	frame := func(flags amcast.MsgFlags, session []byte) []byte {
		buf := []byte{byte(amcast.KindRequest)}
		buf = binary.AppendUvarint(buf, uint64(uint32(amcast.ClientNode(1))))
		buf = binary.AppendUvarint(buf, 7) // id
		buf = binary.AppendUvarint(buf, uint64(uint32(amcast.ClientNode(1))))
		buf = append(buf, byte(flags))
		buf = append(buf, session...)
		buf = binary.AppendUvarint(buf, 1) // nDst
		buf = binary.AppendUvarint(buf, 2) // dst group 2
		buf = binary.AppendUvarint(buf, 0) // empty payload
		return buf
	}

	good := frame(amcast.FlagSession, []byte{42})
	env, err := Unmarshal(good)
	if err != nil {
		t.Fatalf("canonical session frame rejected: %v", err)
	}
	if env.Msg.Session != 42 || env.Msg.Flags&amcast.FlagSession == 0 {
		t.Fatalf("decoded session = %d (flags %b), want 42", env.Msg.Session, env.Msg.Flags)
	}

	if _, err := Unmarshal(frame(amcast.FlagSession, []byte{0})); err == nil ||
		!strings.Contains(err.Error(), "session id 0") {
		t.Fatalf("FlagSession with session 0 accepted (err %v)", err)
	}
	// Non-minimal session varint (1 encoded in two bytes).
	if _, err := Unmarshal(frame(amcast.FlagSession, []byte{0x81, 0x00})); err == nil ||
		!strings.Contains(err.Error(), "non-minimal") {
		t.Fatalf("non-minimal session varint accepted (err %v)", err)
	}
	// Session bytes without the flag: the varint lands on the destination
	// count and the frame must not decode.
	if _, err := Unmarshal(frame(0, []byte{42})); err == nil {
		t.Fatal("session section without FlagSession accepted")
	}
	// Flag without the section: the destination count is consumed as the
	// session id and the frame must not decode.
	if _, err := Unmarshal(frame(amcast.FlagSession, nil)); err == nil {
		t.Fatal("FlagSession without a session varint accepted")
	}
}

// TestDuplicateFoldBoundary pins the epoch semantics the engine's
// duplicate fold depends on: the max-epoch form survives normalization,
// and adjacent epochs of the same pair stay distinct on the wire.
func TestDuplicateFoldBoundary(t *testing.T) {
	ps := amcast.NormalizePairs([]amcast.NotifPair{
		{Notifier: 2, Notified: 4, Epoch: 2},
		{Notifier: 2, Notified: 4, Epoch: 1},
		{Notifier: 2, Notified: 7, Epoch: 1},
	})
	want := []amcast.NotifPair{{Notifier: 2, Notified: 4, Epoch: 2}, {Notifier: 2, Notified: 7, Epoch: 1}}
	if !reflect.DeepEqual(ps, want) {
		t.Fatalf("NormalizePairs = %+v, want %+v", ps, want)
	}
	cs := amcast.NormalizeCovers([]amcast.AckCover{
		{Notifier: 3, Epoch: 1},
		{Notifier: 3, Epoch: 5},
		{Notifier: 2, Epoch: 1},
	})
	wantC := []amcast.AckCover{{Notifier: 2, Epoch: 1}, {Notifier: 3, Epoch: 5}}
	if !reflect.DeepEqual(cs, wantC) {
		t.Fatalf("NormalizeCovers = %+v, want %+v", cs, wantC)
	}
	// Epochs e and e+1 of the same NOTIF are distinct frames: the only
	// difference is the certification epoch, which the codec must carry.
	hdr := amcast.Message{ID: amcast.NewMsgID(1, 1), Sender: amcast.ClientNode(1), Dst: []amcast.GroupID{2, 4}}
	e1 := amcast.Envelope{Kind: amcast.KindNotif, From: amcast.GroupNode(2), Msg: hdr, CertEpoch: 1}
	e2 := e1
	e2.CertEpoch = 2
	if reflect.DeepEqual(Marshal(e1), Marshal(e2)) {
		t.Fatal("NOTIF epochs 1 and 2 encode identically")
	}
	for _, env := range []amcast.Envelope{e1, e2} {
		got, err := Unmarshal(Marshal(env))
		if err != nil {
			t.Fatal(err)
		}
		if got.CertEpoch != env.CertEpoch {
			t.Fatalf("CertEpoch %d round-tripped to %d", env.CertEpoch, got.CertEpoch)
		}
	}
}

func TestUnmarshalRejectsHugeCounts(t *testing.T) {
	// kind=REQUEST, from=1, id=1, sender=1, flags=0, then a destination
	// count far beyond maxCount.
	buf := []byte{byte(amcast.KindRequest), 1, 1, 1, 0,
		0xFF, 0xFF, 0xFF, 0xFF, 0x7F} // ~34 bits
	if _, err := Unmarshal(buf); err == nil {
		t.Fatal("huge count accepted")
	}
}

func TestTruncatedInputsNeverPanic(t *testing.T) {
	for _, env := range sampleEnvelopes() {
		buf := Marshal(env)
		for cut := 0; cut < len(buf); cut++ {
			if _, err := Unmarshal(buf[:cut]); err == nil {
				t.Fatalf("%s truncated at %d accepted", env.Kind, cut)
			}
		}
	}
}

func randomEnvelope(rng *rand.Rand) amcast.Envelope {
	kinds := []amcast.Kind{
		amcast.KindRequest, amcast.KindMsg, amcast.KindAck, amcast.KindNotif,
		amcast.KindTS, amcast.KindFwd, amcast.KindReply, amcast.KindRead,
	}
	env := amcast.Envelope{
		Kind:  kinds[rng.Intn(len(kinds))],
		From:  amcast.NodeID(rng.Intn(1 << 20)),
		TS:    rng.Uint64() >> uint(rng.Intn(64)),
		Value: rng.Int63() - rng.Int63(),
	}
	env.Msg = amcast.Message{
		ID:     amcast.MsgID(rng.Uint64() >> uint(rng.Intn(64))),
		Sender: amcast.ClientNode(rng.Intn(1000)),
		Flags:  amcast.MsgFlags(rng.Intn(8)),
	}
	if env.Msg.Flags&amcast.FlagSession != 0 {
		env.Msg.Session = 1 + rng.Uint64()>>uint(1+rng.Intn(63))
	}
	if env.Kind == amcast.KindReply {
		env.Watermark = rng.Uint64() >> uint(rng.Intn(64))
	}
	for i := 0; i < rng.Intn(4); i++ {
		env.Msg.Dst = append(env.Msg.Dst, amcast.GroupID(rng.Intn(12)+1))
	}
	env.Msg.Dst = amcast.NormalizeDst(env.Msg.Dst)
	if hasPayload(env.Kind) {
		env.Msg.Payload = make([]byte, rng.Intn(64))
		rng.Read(env.Msg.Payload)
	}
	if hasHist(env.Kind) && rng.Intn(2) == 0 {
		h := &amcast.HistDelta{}
		for i := 0; i < rng.Intn(5); i++ {
			h.Nodes = append(h.Nodes, amcast.HistNode{
				ID:  amcast.MsgID(rng.Intn(100)),
				Dst: []amcast.GroupID{amcast.GroupID(rng.Intn(12) + 1)},
			})
		}
		for i := 0; i < rng.Intn(5); i++ {
			h.Edges = append(h.Edges, amcast.HistEdge{
				From: amcast.MsgID(rng.Intn(100)), To: amcast.MsgID(rng.Intn(100)),
			})
		}
		env.Hist = h
	}
	if hasCertEpoch(env.Kind) {
		env.CertEpoch = uint64(rng.Intn(5)) + 1
	}
	if hasNotifList(env.Kind) {
		for i := 0; i < rng.Intn(3); i++ {
			env.NotifList = append(env.NotifList, amcast.NotifPair{
				Notifier: amcast.GroupID(rng.Intn(12) + 1),
				Notified: amcast.GroupID(rng.Intn(12) + 1),
				Epoch:    uint64(rng.Intn(4)) + 1,
			})
		}
		env.NotifList = amcast.NormalizePairs(env.NotifList)
		if len(env.NotifList) == 0 {
			env.NotifList = nil
		}
	}
	if hasAckCovers(env.Kind) {
		for i := 0; i < rng.Intn(3); i++ {
			env.AckCovers = append(env.AckCovers, amcast.AckCover{
				Notifier: amcast.GroupID(rng.Intn(12) + 1),
				Epoch:    uint64(rng.Intn(4)) + 1,
			})
		}
		env.AckCovers = amcast.NormalizeCovers(env.AckCovers)
		if len(env.AckCovers) == 0 {
			env.AckCovers = nil
		}
	}
	if hasTS(env.Kind) {
		env.TSFrom = amcast.GroupID(rng.Intn(12) + 1)
	}
	if hasResult(env.Kind) {
		env.Result = uint8(rng.Intn(3))
	}
	return env
}

func TestRandomRoundTripAndSize(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		env := randomEnvelope(rng)
		buf := Marshal(env)
		if len(buf) != Size(env) {
			return false
		}
		got, err := Unmarshal(buf)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(normalize(got), normalize(env))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
