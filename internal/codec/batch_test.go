package codec

import (
	"bytes"
	"encoding/binary"
	"reflect"
	"strings"
	"testing"

	"flexcast/amcast"
)

func batchSampleEnvelopes() []amcast.Envelope {
	return []amcast.Envelope{
		{Kind: amcast.KindRequest, From: amcast.ClientNode(1), Msg: amcast.Message{
			ID: amcast.NewMsgID(1, 1), Sender: amcast.ClientNode(1),
			Dst: []amcast.GroupID{2, 4}, Payload: []byte("payload-a"),
		}},
		{Kind: amcast.KindMsg, From: amcast.GroupNode(2), Msg: amcast.Message{
			ID: amcast.NewMsgID(1, 1), Sender: amcast.ClientNode(1),
			Dst: []amcast.GroupID{2, 4}, Payload: []byte("payload-a"),
		}, Hist: &amcast.HistDelta{
			Nodes: []amcast.HistNode{{ID: 7, Dst: []amcast.GroupID{2, 4}}},
			Edges: []amcast.HistEdge{{From: 7, To: amcast.NewMsgID(1, 1)}},
		}, NotifList: []amcast.NotifPair{{Notifier: 2, Notified: 3, Epoch: 1}}},
		{Kind: amcast.KindAck, From: amcast.GroupNode(3), Msg: amcast.Message{
			ID: amcast.NewMsgID(1, 1), Dst: []amcast.GroupID{2, 4},
		}, AckCovers: []amcast.AckCover{{Notifier: 2, Epoch: 1}}},
		{Kind: amcast.KindTS, From: amcast.GroupNode(9), Msg: amcast.Message{
			ID: 8, Dst: []amcast.GroupID{9, 11},
		}, TS: 42, TSFrom: 9},
		{Kind: amcast.KindReply, From: amcast.GroupNode(5), Msg: amcast.Message{
			ID: 8, Dst: []amcast.GroupID{5},
		}, TS: 7},
	}
}

func TestBatchRoundTrip(t *testing.T) {
	envs := batchSampleEnvelopes()
	for n := 1; n <= len(envs); n++ {
		buf := MarshalBatch(envs[:n])
		if !IsBatch(buf) {
			t.Fatalf("batch of %d not recognized as batch frame", n)
		}
		if got := BatchSize(envs[:n]); got != len(buf) {
			t.Fatalf("BatchSize = %d, wire length = %d", got, len(buf))
		}
		dec, err := UnmarshalBatch(buf)
		if err != nil {
			t.Fatalf("UnmarshalBatch(%d envs): %v", n, err)
		}
		if !reflect.DeepEqual(dec, envs[:n]) {
			t.Fatalf("batch of %d did not round trip:\n got %+v\nwant %+v", n, dec, envs[:n])
		}
		if re := MarshalBatch(dec); !bytes.Equal(re, buf) {
			t.Fatalf("batch re-encode not canonical")
		}
	}
}

func TestBatchSingleEnvelopeDistinctFromPlainFrame(t *testing.T) {
	env := batchSampleEnvelopes()[0]
	single := Marshal(env)
	batch := MarshalBatch([]amcast.Envelope{env})
	if IsBatch(single) {
		t.Fatalf("plain envelope misdetected as batch")
	}
	if bytes.Equal(single, batch) {
		t.Fatalf("batch and single frames must differ")
	}
	if _, err := Unmarshal(batch); err == nil {
		t.Fatalf("Unmarshal accepted a batch frame")
	}
	if _, err := UnmarshalBatch(single); err == nil {
		t.Fatalf("UnmarshalBatch accepted a plain envelope")
	}
}

func TestBatchRejectsEmpty(t *testing.T) {
	if _, err := UnmarshalBatch([]byte{BatchKind, 0}); err == nil {
		t.Fatalf("empty batch accepted")
	}
	if _, err := UnmarshalBatch([]byte{BatchKind}); err == nil {
		t.Fatalf("truncated batch accepted")
	}
	if _, err := UnmarshalBatch(nil); err == nil {
		t.Fatalf("nil buffer accepted")
	}
}

func TestBatchRejectsOversized(t *testing.T) {
	buf := []byte{BatchKind}
	buf = binary.AppendUvarint(buf, MaxBatchEnvelopes+1)
	_, err := UnmarshalBatch(buf)
	if err == nil || !strings.Contains(err.Error(), "exceeds limit") {
		t.Fatalf("oversized batch not rejected: %v", err)
	}
}

func TestBatchRejectsTrailingGarbage(t *testing.T) {
	buf := MarshalBatch(batchSampleEnvelopes()[:2])
	if _, err := UnmarshalBatch(append(buf, 0x00)); err == nil {
		t.Fatalf("trailing garbage accepted")
	}
}

func TestBatchRejectsCorruptInnerEnvelope(t *testing.T) {
	envs := batchSampleEnvelopes()[:1]
	buf := MarshalBatch(envs)
	// Flip the inner envelope's kind byte to an unknown value: the inner
	// Unmarshal must reject it. The kind byte sits right after the batch
	// header (BatchKind, count, inner length).
	inner := len(buf) - Size(envs[0])
	buf[inner] = 0xEE
	if _, err := UnmarshalBatch(buf); err == nil {
		t.Fatalf("corrupt inner envelope accepted")
	}
}

func TestBatchRejectsNonCanonicalInnerLength(t *testing.T) {
	envs := batchSampleEnvelopes()[:1]
	size := Size(envs[0])
	if size >= 0x80 {
		t.Skip("sample envelope too large for a two-byte non-minimal length")
	}
	buf := []byte{BatchKind, 1}
	// Non-minimal varint for the inner length: 0x80|size, 0x00.
	buf = append(buf, byte(0x80|size), 0x00)
	buf = Append(buf, envs[0])
	if _, err := UnmarshalBatch(buf); err == nil {
		t.Fatalf("non-minimal inner length accepted")
	}
}

func TestAppendMatchesMarshal(t *testing.T) {
	for _, env := range batchSampleEnvelopes() {
		prefix := []byte{0xAB, 0xCD}
		got := Append(append([]byte(nil), prefix...), env)
		want := append(append([]byte(nil), prefix...), Marshal(env)...)
		if !bytes.Equal(got, want) {
			t.Fatalf("Append diverges from Marshal for kind %s", env.Kind)
		}
	}
}
