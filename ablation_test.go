// Ablation benchmarks for the design choices called out in DESIGN.md:
// flush-based garbage collection (§4.3) and Paxos replication of groups
// (§4.4). These do not correspond to paper figures; they quantify the
// cost/benefit of each mechanism in this implementation.
package flexcast_test

import (
	"testing"
	"time"

	"flexcast"
	"flexcast/amcast"
	"flexcast/internal/harness"
)

// BenchmarkAblationFlushGC compares FlexCast's per-node traffic with and
// without the periodic flush (§4.3). The trade-off this quantifies:
//
//   - gc-on pays a steady broadcast tax (the flush message is multicast
//     to every group and its acks carry history diffs to every
//     descendant), but history size — and hence per-delivery CPU and
//     diff size — stays flat for arbitrarily long runs.
//   - gc-off avoids that tax, so at short horizons its bytes/envelope is
//     lower, but histories grow without bound: wall-clock time per
//     simulated second (the ns/op column) degrades several-fold even at
//     this 8-virtual-second horizon, and bytes/envelope rises with run
//     length until it overtakes gc-on.
func BenchmarkAblationFlushGC(b *testing.B) {
	run := func(b *testing.B, flushEvery int64) float64 {
		b.Helper()
		res, err := harness.Run(harness.Config{
			Protocol:   harness.FlexCast,
			Locality:   0.95,
			NumClients: 120,
			GlobalOnly: true,
			Duration:   8_000_000,
			Seed:       1,
			FlushEvery: flushEvery,
		})
		if err != nil {
			b.Fatal(err)
		}
		var envs, bytes float64
		for _, g := range res.Metrics.Groups() {
			c := res.Metrics.Node(amcast.GroupNode(g))
			envs += float64(c.EnvsReceived)
			bytes += float64(c.BytesReceived)
		}
		return bytes / envs
	}
	b.Run("gc-on", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.ReportMetric(run(b, 250_000), "B/envelope")
		}
	})
	b.Run("gc-off", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.ReportMetric(run(b, 0), "B/envelope")
		}
	})
}

// BenchmarkAblationReplication measures the virtual-time delivery latency
// of a three-group FlexCast multicast when groups are single-process
// versus Paxos-replicated (1 vs 3 replicas). The difference is the
// intra-group consensus cost the paper's evaluation deliberately excludes
// (§5.1: "avoids overhead introduced by replication").
func BenchmarkAblationReplication(b *testing.B) {
	for _, replicas := range []int{1, 3, 5} {
		replicas := replicas
		b.Run(map[int]string{1: "single", 3: "three-replicas", 5: "five-replicas"}[replicas], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ov, err := flexcast.NewOverlay([]flexcast.GroupID{1, 2, 3})
				if err != nil {
					b.Fatal(err)
				}
				cl, err := flexcast.NewReplicatedCluster(flexcast.ReplicatedClusterConfig{
					Overlay:          ov,
					ReplicasPerGroup: replicas,
					InterRegionRTT:   80 * time.Millisecond,
				})
				if err != nil {
					b.Fatal(err)
				}
				const n = 20
				ids := make([]flexcast.MsgID, 0, n)
				for j := 0; j < n; j++ {
					id, err := cl.Multicast([]flexcast.GroupID{1, 2, 3}, []byte("x"))
					if err != nil {
						b.Fatal(err)
					}
					ids = append(ids, id)
				}
				// Advance virtual time until everything is delivered,
				// tracking how long that took in simulated time.
				deadline := 60 * time.Second
				step := 10 * time.Millisecond
				var elapsed time.Duration
				for elapsed < deadline {
					cl.Run(step)
					elapsed += step
					all := true
					for _, id := range ids {
						if !cl.Delivered(id) {
							all = false
							break
						}
					}
					if all {
						break
					}
				}
				for _, id := range ids {
					if !cl.Delivered(id) {
						b.Fatalf("message %s undelivered after %v virtual time", id, deadline)
					}
				}
				b.ReportMetric(float64(elapsed.Milliseconds()), "virtual-ms-total")
				cl.Close()
			}
		})
	}
}
