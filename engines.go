package flexcast

import (
	"flexcast/amcast"
	"flexcast/internal/core"
	"flexcast/internal/hierarchical"
	"flexcast/internal/skeen"
)

// NewFlexCastEngine builds the FlexCast protocol state machine for one
// group on the given C-DAG overlay — the paper's contribution
// (Algorithms 1-3). The engine is deterministic and single-threaded;
// attach it to a Cluster, the simulator harness, or a TCP node.
func NewFlexCastEngine(g GroupID, ov *Overlay) (Engine, error) {
	return core.New(core.Config{Group: g, Overlay: ov})
}

// NewFlexCastEngineNoGC is NewFlexCastEngine with flush-based history
// garbage collection disabled (histories then grow for the whole run).
func NewFlexCastEngineNoGC(g GroupID, ov *Overlay) (Engine, error) {
	return core.New(core.Config{Group: g, Overlay: ov, DisableGC: true})
}

// NewSkeenEngine builds the distributed genuine baseline: Skeen's
// timestamp-based atomic multicast over a fully connected topology.
func NewSkeenEngine(g GroupID, groups []GroupID) (Engine, error) {
	return skeen.New(skeen.Config{Group: g, Groups: groups})
}

// NewHierarchicalEngine builds the non-genuine tree baseline (ByzCast's
// ordering scheme with single-process groups).
func NewHierarchicalEngine(g GroupID, tree *Tree) (Engine, error) {
	return hierarchical.New(hierarchical.Config{Group: g, Tree: tree})
}

// EntryNodes returns the node(s) a client must send a message to for each
// protocol: FlexCast enters at the C-DAG lca, the hierarchical protocol
// at the tree lowest common ancestor, and Skeen's protocol at every
// destination.

// FlexCastEntry returns the entry node for a FlexCast multicast.
func FlexCastEntry(ov *Overlay, m Message) NodeID {
	return GroupNode(ov.Lca(m.Dst))
}

// HierarchicalEntry returns the entry node for a tree multicast.
func HierarchicalEntry(tree *Tree, m Message) NodeID {
	return GroupNode(tree.Lca(m.Dst))
}

// SkeenEntry returns the entry nodes for a Skeen multicast (all
// destinations).
func SkeenEntry(m Message) []NodeID {
	nodes := make([]NodeID, len(m.Dst))
	for i, g := range m.Dst {
		nodes[i] = GroupNode(g)
	}
	return nodes
}

// GroupNode returns the network address of a group's server process.
func GroupNode(g GroupID) NodeID { return amcast.GroupNode(g) }

// ClientNode returns the network address of client i.
func ClientNode(i int) NodeID { return amcast.ClientNode(i) }
