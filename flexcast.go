// Package flexcast is a Go implementation of FlexCast — the genuine
// overlay-based atomic multicast protocol of Batista, Coelho, Alchieri,
// Dotti and Pedone (Middleware 2023, arXiv:2309.14074) — together with
// the two baselines the paper evaluates against (Skeen's distributed
// genuine protocol and a ByzCast-style hierarchical tree protocol), the
// gTPC-C benchmark, an emulated 12-region WAN, a deterministic
// discrete-event simulator, real in-memory and TCP runtimes, and a
// Paxos-based state machine replication substrate for fault-tolerant
// groups.
//
// # Quick start
//
// Build a three-group FlexCast cluster and multicast to it:
//
//	ov, _ := flexcast.NewOverlay([]flexcast.GroupID{1, 2, 3})
//	cl, _ := flexcast.NewCluster(flexcast.ClusterConfig{
//		Overlay: ov,
//		OnDeliver: func(d flexcast.Delivery) {
//			fmt.Printf("group %d delivered %s\n", d.Group, d.Msg.Payload)
//		},
//	})
//	defer cl.Close()
//	cl.Call([]flexcast.GroupID{1, 3}, []byte("hello"))
//
// # Protocol in one paragraph
//
// Groups are ranked on a complete DAG: every group has a FIFO reliable
// channel to every higher-ranked group. A message enters the overlay at
// its lca — the lowest-ranked destination — which delivers immediately
// and propagates the message (with a diff of its delivery history) to the
// other destinations. Lower destinations acknowledge to higher ones, and
// groups that hold relevant ordering information without being
// destinations are notified so they flush it down the DAG. A destination
// delivers once it holds every required acknowledgment and no undelivered
// message addressed to it precedes the message in its history. Only the
// sender and destinations (plus previously involved groups) ever
// communicate — the protocol is genuine — and the global delivery order
// is acyclic.
//
// # Reproducing the paper
//
// The cmd/flexbench binary regenerates every table and figure of the
// paper's evaluation on the simulated WAN; see EXPERIMENTS.md for the
// paper-vs-measured record and DESIGN.md for the experiment index.
package flexcast

import (
	"flexcast/amcast"
	"flexcast/internal/overlay"
	"flexcast/internal/wan"
)

// Core identifiers and message types, shared by every protocol.
type (
	// GroupID identifies a server group (1-based).
	GroupID = amcast.GroupID
	// MsgID is a globally unique message identifier.
	MsgID = amcast.MsgID
	// NodeID addresses a process (group server or client).
	NodeID = amcast.NodeID
	// Message is an application message handed to multicast.
	Message = amcast.Message
	// Delivery is a message delivered at a group, with its group-local
	// sequence number.
	Delivery = amcast.Delivery
	// Envelope is the wire unit exchanged between nodes.
	Envelope = amcast.Envelope
	// Engine is the deterministic protocol state machine interface.
	Engine = amcast.Engine
)

// Overlay is FlexCast's complete-DAG overlay: a total order (rank) over
// groups where each group can send to every higher-ranked group.
type Overlay = overlay.CDAG

// Tree is the hierarchical baseline's tree overlay.
type Tree = overlay.Tree

// NewOverlay builds a C-DAG overlay whose rank order is the given group
// sequence (first group = lowest rank).
func NewOverlay(order []GroupID) (*Overlay, error) { return overlay.NewCDAG(order) }

// NewTree builds a tree overlay from a root and a parent→children map.
func NewTree(root GroupID, children map[GroupID][]GroupID) (*Tree, error) {
	return overlay.NewTree(root, children)
}

// GreedyChain builds a rank order with the paper's O1/O2 rule: start at a
// group and repeatedly append the closest unvisited group (rtt returns a
// symmetric distance).
func GreedyChain(start GroupID, groups []GroupID, rtt func(a, b GroupID) int64) ([]GroupID, error) {
	return overlay.GreedyChain(start, groups, rtt)
}

// AWS topology of the paper's evaluation (12 regions, Figure 4).
var (
	// AWSGroups lists the 12 region groups.
	AWSGroups = wan.Groups
	// AWSRegionName maps a group to its AWS region name.
	AWSRegionName = wan.RegionName
	// AWSRTTMicros returns the inter-region round-trip time in µs.
	AWSRTTMicros = wan.RTTMicros
	// O1 is the paper's primary FlexCast overlay (greedy chain from
	// Frankfurt).
	O1 = wan.O1
	// O2 is the alternative FlexCast overlay (greedy chain from Ohio).
	O2 = wan.O2
	// T1, T2, T3 are the paper's hierarchical trees.
	T1 = wan.T1
	T2 = wan.T2
	T3 = wan.T3
)
