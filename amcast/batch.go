package amcast

// BatchStepper is an optional Engine extension: an engine that can drain
// a whole inbound batch in one call. A batch is a scheduling unit: the
// engine consumes the envelopes in order, but it may defer its internal
// progress fixpoint (delivery scans, queue reprocessing) to the end of
// the batch — the dominant per-envelope cost in the protocols here — so
// outputs may be consolidated relative to the per-envelope execution
// (fewer, later acks carrying larger history diffs). The result must be
// protocol-equivalent: everything emitted and delivered is something the
// per-envelope engine could also have emitted and delivered under a
// valid execution in which the node processed the batch while
// momentarily busy, and all of the protocol's safety properties
// (integrity, agreement, acyclic order, minimality) hold over chunked
// executions — internal/prototest.RunChunkedSafety checks exactly this.
//
// The determinism contract extends to batches: given the same sequence
// of batches, an engine must produce the same outputs and deliveries.
// State machine replication (internal/smr) relies on it when replicas
// apply batched decided values.
//
// All three protocol engines in this repository implement it.
type BatchStepper interface {
	// BatchStep consumes the batch in order and returns the envelopes to
	// send.
	BatchStep(envs []Envelope) []Output
}

// BatchStep drains envs through eng, using the engine's fast path when
// it implements BatchStepper and falling back to per-envelope OnEnvelope
// otherwise. This is the single entry point runtimes use, so an engine
// from outside this repository (implementing only Engine) runs unchanged
// under the batched runtime.
func BatchStep(eng Engine, envs []Envelope) []Output {
	if len(envs) == 0 {
		return nil
	}
	if bs, ok := eng.(BatchStepper); ok {
		return bs.BatchStep(envs)
	}
	if len(envs) == 1 {
		return eng.OnEnvelope(envs[0])
	}
	var outs []Output
	for _, env := range envs {
		outs = append(outs, eng.OnEnvelope(env)...)
	}
	return outs
}
