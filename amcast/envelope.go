package amcast

import (
	"fmt"
	"sort"
)

// Kind discriminates the wire envelopes exchanged by the protocols.
type Kind uint8

const (
	// KindRequest is a client request entering a protocol: the client sends
	// the application message to the protocol-specific entry node(s)
	// (FlexCast: the lca; hierarchical: the tree lowest common ancestor;
	// Skeen: every destination).
	KindRequest Kind = iota + 1
	// KindMsg is FlexCast's application-message propagation from the lca to
	// the remaining destinations, carrying a history diff.
	KindMsg
	// KindAck is FlexCast's acknowledgment from a destination (or a
	// notified group) to higher destinations, carrying a history diff and
	// the sender's accumulated notification list (Strategy b).
	KindAck
	// KindNotif is FlexCast's notification to a non-destination group that
	// must propagate its dependencies down the C-DAG (Strategy c).
	KindNotif
	// KindTS is Skeen's local-timestamp exchange between destinations.
	KindTS
	// KindFwd is the hierarchical protocol's downward forwarding of an
	// application message along the tree.
	KindFwd
	// KindReply is the per-destination response a group sends to the
	// message's client upon delivery (paper §5.2).
	KindReply
)

// String names the envelope kind for logs and metrics.
func (k Kind) String() string {
	switch k {
	case KindRequest:
		return "REQUEST"
	case KindMsg:
		return "MSG"
	case KindAck:
		return "ACK"
	case KindNotif:
		return "NOTIF"
	case KindTS:
		return "TS"
	case KindFwd:
		return "FWD"
	case KindReply:
		return "REPLY"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// IsPayload reports whether envelopes of this kind carry the application
// payload. The paper's communication-overhead metric (Figures 1 and 9)
// counts payload messages only.
func (k Kind) IsPayload() bool {
	switch k {
	case KindRequest, KindMsg, KindFwd:
		return true
	default:
		return false
	}
}

// Envelope is the unit of communication between nodes. A single envelope
// type (with optional fields) keeps the codec simple and makes message-size
// accounting uniform across protocols.
type Envelope struct {
	Kind Kind
	From NodeID
	// Msg carries the application message. For auxiliary kinds (ACK, NOTIF,
	// TS, REPLY) only the header (id, sender, dst) is present.
	Msg Message
	// Hist is the FlexCast history diff piggybacked on MSG/ACK/NOTIF
	// envelopes (diff-hst in Algorithm 3). Nil for other kinds.
	Hist *HistDelta
	// NotifList carries the notification pairs known so far about Msg
	// (FlexCast MSG/ACK envelopes; Algorithm 3 line 40). Pairs rather
	// than a flat group set: a destination must match each notified
	// ancestor's flush ack against the notifier whose history triggered
	// the notification, or a flush ack predating a later notifier's
	// dependencies could satisfy the wait too early (see DESIGN.md §4).
	NotifList []NotifPair
	// AckCovers, on a notified group's flush ACK, names the notifiers
	// whose notifications this ack answers. Empty on destination acks.
	AckCovers []GroupID
	// TS is the Skeen local timestamp (KindTS) and doubles as the delivery
	// sequence number on KindReply envelopes.
	TS uint64
	// TSFrom is the group that assigned TS (KindTS).
	TSFrom GroupID
	// Result is the execution outcome on KindReply envelopes when the
	// replying group executes deliveries against application state
	// (ResultCommitted/ResultAborted; ResultNone otherwise).
	Result uint8
}

// NotifPair records that Notifier sent a NOTIF about a message to
// Notified (a non-destination holding relevant ordering information).
type NotifPair struct {
	Notifier, Notified GroupID
}

// NormalizePairs sorts pairs by (notifier, notified) and removes
// duplicates, in place; deterministic encoding needs a canonical order.
func NormalizePairs(ps []NotifPair) []NotifPair {
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].Notifier != ps[j].Notifier {
			return ps[i].Notifier < ps[j].Notifier
		}
		return ps[i].Notified < ps[j].Notified
	})
	out := ps[:0]
	for i, p := range ps {
		if i == 0 || p != ps[i-1] {
			out = append(out, p)
		}
	}
	return out
}

// HistNode is one vertex of a history diff: a message id plus its
// destination set (the paper's "a vertex contains a message's id and
// destinations").
type HistNode struct {
	ID  MsgID
	Dst []GroupID
}

// HistEdge is one dependency edge of a history diff: From was ordered
// before To.
type HistEdge struct {
	From, To MsgID
}

// HistDelta is the incremental portion of a group's history sent to one
// descendant (diff-hst in Algorithm 3). Nodes and Edges are sorted for
// deterministic encoding.
type HistDelta struct {
	Nodes []HistNode
	Edges []HistEdge
}

// Empty reports whether the delta carries no information.
func (d *HistDelta) Empty() bool {
	return d == nil || (len(d.Nodes) == 0 && len(d.Edges) == 0)
}

// Output is an envelope queued for transmission to another node.
type Output struct {
	To  NodeID
	Env Envelope
}

// PrefixTracker accumulates, per group, the delivered prefix a client
// has observed: every KindReply envelope answers one delivery and
// carries its group-local sequence number (Envelope.TS), so a reply
// witnesses that deliveries 0..TS have been applied at the replying
// group. The tracked prefix is the read-your-writes barrier of the
// local-read fast path (internal/store, DESIGN.md §1d); every harness
// that derives read barriers from replies folds them through this one
// type. Not synchronized — callers guard it with whatever protects
// their reply handling.
type PrefixTracker map[GroupID]uint64

// Observe folds one envelope into the tracker (non-reply kinds are
// ignored).
func (t PrefixTracker) Observe(env Envelope) {
	if env.Kind != KindReply {
		return
	}
	if g := env.From.Group(); env.TS+1 > t[g] {
		t[g] = env.TS + 1
	}
}

// Prefix returns the observed delivered prefix at group g.
func (t PrefixTracker) Prefix(g GroupID) uint64 { return t[g] }
