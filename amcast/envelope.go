package amcast

import (
	"fmt"
	"sort"
)

// Kind discriminates the wire envelopes exchanged by the protocols.
type Kind uint8

const (
	// KindRequest is a client request entering a protocol: the client sends
	// the application message to the protocol-specific entry node(s)
	// (FlexCast: the lca; hierarchical: the tree lowest common ancestor;
	// Skeen: every destination).
	KindRequest Kind = iota + 1
	// KindMsg is FlexCast's application-message propagation from the lca to
	// the remaining destinations, carrying a history diff.
	KindMsg
	// KindAck is FlexCast's acknowledgment from a destination (or a
	// notified group) to higher destinations, carrying a history diff and
	// the sender's accumulated notification list (Strategy b).
	KindAck
	// KindNotif is FlexCast's notification to a non-destination group that
	// must propagate its dependencies down the C-DAG (Strategy c).
	KindNotif
	// KindTS is Skeen's local-timestamp exchange between destinations.
	KindTS
	// KindFwd is the hierarchical protocol's downward forwarding of an
	// application message along the tree.
	KindFwd
	// KindReply is the per-destination response a group sends to the
	// message's client upon delivery (paper §5.2). Replies from executing
	// deployments additionally piggyback the serving node's delivered-
	// prefix watermark (Envelope.Watermark) — the adaptive session-barrier
	// feed (DESIGN.md §1e).
	KindReply
	// KindRead is a read-only transaction addressed to one serving node
	// outside the multicast: the client sends the encoded transaction
	// (Msg.Payload) with its session barrier in TS, and the node answers
	// with a KindReply carrying the read's value and watermark. It is the
	// remote leg of the read path — used when the client is not co-located
	// with a replica holding a read lease (DESIGN.md §1e). Read envelopes
	// never enter a protocol engine; the runtime serves them directly.
	KindRead
)

// String names the envelope kind for logs and metrics.
func (k Kind) String() string {
	switch k {
	case KindRequest:
		return "REQUEST"
	case KindMsg:
		return "MSG"
	case KindAck:
		return "ACK"
	case KindNotif:
		return "NOTIF"
	case KindTS:
		return "TS"
	case KindFwd:
		return "FWD"
	case KindReply:
		return "REPLY"
	case KindRead:
		return "READ"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// IsPayload reports whether envelopes of this kind carry the application
// payload. The paper's communication-overhead metric (Figures 1 and 9)
// counts payload messages only.
func (k Kind) IsPayload() bool {
	switch k {
	case KindRequest, KindMsg, KindFwd, KindRead:
		return true
	default:
		return false
	}
}

// Envelope is the unit of communication between nodes. A single envelope
// type (with optional fields) keeps the codec simple and makes message-size
// accounting uniform across protocols.
type Envelope struct {
	// Kind discriminates the envelope.
	Kind Kind
	// From is the sending node.
	From NodeID
	// Msg carries the application message. For auxiliary kinds (ACK, NOTIF,
	// TS, REPLY) only the header (id, sender, dst) is present.
	Msg Message
	// Hist is the FlexCast history diff piggybacked on MSG/ACK/NOTIF
	// envelopes (diff-hst in Algorithm 3). Nil for other kinds.
	Hist *HistDelta
	// NotifList carries the notification pairs known so far about Msg
	// (FlexCast MSG/ACK envelopes; Algorithm 3 line 40). Pairs rather
	// than a flat group set: a destination must match each notified
	// ancestor's flush ack against the notifier whose history triggered
	// the notification, or a flush ack predating a later notifier's
	// dependencies could satisfy the wait too early (see DESIGN.md §4).
	// Each pair carries the notifier's certification epoch for the
	// notified group — destinations wait for a flush ack covering at
	// least that epoch, which is what closes the fresh-request
	// staircase ring (DESIGN.md §4 deviation 8).
	NotifList []NotifPair
	// AckCovers, on a notified group's flush ACK, names the notifiers
	// whose notifications this ack answers, each with the highest
	// certification epoch answered. Empty on destination acks.
	AckCovers []AckCover
	// CertEpoch is the certification epoch of a KindNotif envelope
	// (≥ 1). A notifier bumps it when traffic addressed to the notified
	// group entered its history since the last NOTIF about this
	// message, so the re-NOTIF carrying a fresh edge is not foldable as
	// a duplicate. 0 on every other kind.
	CertEpoch uint64
	// TS is the Skeen local timestamp (KindTS), the delivery sequence
	// number on KindReply envelopes, and the client's read barrier on
	// KindRead envelopes.
	TS uint64
	// TSFrom is the group that assigned TS (KindTS).
	TSFrom GroupID
	// Result is the execution outcome on KindReply envelopes when the
	// replying group executes deliveries against application state
	// (ResultCommitted/ResultAborted, ResultRefused for refused reads;
	// ResultNone otherwise).
	Result uint8
	// Watermark, on KindReply envelopes from executing deployments, is
	// the serving node's delivered-prefix watermark when the reply was
	// built — at least TS+1 for delivery replies, and the read's
	// serialization prefix for read replies. Clients fold it into their
	// session barrier (PrefixTracker), which is what makes the barrier
	// adaptive: it advances with the freshest state the session has
	// witnessed, not just its own writes' sequence numbers. 0 on
	// pure-multicast deployments.
	Watermark uint64
	// Value is the read's result on KindReply envelopes answering a
	// KindRead transaction (Msg.Flags has FlagRead): the order id for
	// order-status (-1 when none), the low-stock count for stock-level.
	Value int64
}

// NotifPair records that Notifier sent a NOTIF about a message to
// Notified (a non-destination holding relevant ordering information),
// most recently at certification epoch Epoch (≥ 1).
type NotifPair struct {
	// Notifier sent the NOTIF; Notified received it.
	Notifier, Notified GroupID
	// Epoch is the highest certification epoch the notifier has sent
	// for this (message, notified) pair.
	Epoch uint64
}

// NormalizePairs sorts pairs by (notifier, notified) and collapses
// duplicates keeping the highest epoch, in place; deterministic
// encoding needs a canonical order, and a destination merging pair
// lists from several envelopes must keep the freshest certification.
func NormalizePairs(ps []NotifPair) []NotifPair {
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].Notifier != ps[j].Notifier {
			return ps[i].Notifier < ps[j].Notifier
		}
		if ps[i].Notified != ps[j].Notified {
			return ps[i].Notified < ps[j].Notified
		}
		return ps[i].Epoch < ps[j].Epoch
	})
	out := ps[:0]
	for _, p := range ps {
		if n := len(out); n > 0 && out[n-1].Notifier == p.Notifier && out[n-1].Notified == p.Notified {
			out[n-1].Epoch = p.Epoch // sorted ascending: p's epoch is the max
			continue
		}
		out = append(out, p)
	}
	return out
}

// AckCover is one entry of a notified group's flush-ack cover list:
// the ack answers Notifier's notifications up to certification epoch
// Epoch (≥ 1).
type AckCover struct {
	// Notifier is the group whose notifications this ack answers.
	Notifier GroupID
	// Epoch is the highest certification epoch answered.
	Epoch uint64
}

// NormalizeCovers sorts covers by notifier and collapses duplicates
// keeping the highest epoch, in place — the canonical encoding of a
// flush ack's cover list.
func NormalizeCovers(cs []AckCover) []AckCover {
	sort.Slice(cs, func(i, j int) bool {
		if cs[i].Notifier != cs[j].Notifier {
			return cs[i].Notifier < cs[j].Notifier
		}
		return cs[i].Epoch < cs[j].Epoch
	})
	out := cs[:0]
	for _, c := range cs {
		if n := len(out); n > 0 && out[n-1].Notifier == c.Notifier {
			out[n-1].Epoch = c.Epoch
			continue
		}
		out = append(out, c)
	}
	return out
}

// HistNode is one vertex of a history diff: a message id plus its
// destination set (the paper's "a vertex contains a message's id and
// destinations").
type HistNode struct {
	// ID is the message's id; Dst its destination set.
	ID  MsgID
	Dst []GroupID
}

// HistEdge is one dependency edge of a history diff: From was ordered
// before To.
type HistEdge struct {
	// From was ordered before To.
	From, To MsgID
}

// HistDelta is the incremental portion of a group's history sent to one
// descendant (diff-hst in Algorithm 3). Nodes and Edges are sorted for
// deterministic encoding.
type HistDelta struct {
	// Nodes and Edges are the diff's vertices and dependency edges,
	// sorted for deterministic encoding.
	Nodes []HistNode
	Edges []HistEdge
}

// Empty reports whether the delta carries no information.
func (d *HistDelta) Empty() bool {
	return d == nil || (len(d.Nodes) == 0 && len(d.Edges) == 0)
}

// Output is an envelope queued for transmission to another node.
type Output struct {
	// To is the destination node; Env the envelope to transmit.
	To  NodeID
	Env Envelope
}

// PrefixTracker is a session barrier: the per-group vector of delivered
// prefixes a client session has observed. Two feeds advance it. Every
// KindReply envelope answers one delivery and carries its group-local
// sequence number (Envelope.TS), so a reply witnesses that deliveries
// 0..TS have been applied at the replying group; executing deployments
// additionally piggyback the serving node's watermark on replies and
// read results (Envelope.Watermark), which can run ahead of TS+1 and is
// folded too. The tracked vector is the read-your-writes barrier of the
// read fast path (internal/store, DESIGN.md §1d/§1e): a read at group g
// served at barrier Prefix(g) sees every delivery the session has
// already observed there, at whichever replica serves it, and folding
// read watermarks back in (Fold) makes successive reads monotonic even
// when they land on different replicas. Every harness that derives read
// barriers from replies folds them through this one type. Not
// synchronized — callers guard it with whatever protects their reply
// handling.
type PrefixTracker map[GroupID]uint64

// Observe folds one envelope into the tracker (non-reply kinds are
// ignored). Delivery replies raise the group's prefix to TS+1; replies
// of either kind also fold the piggybacked watermark — read replies
// (FlagRead) carry no delivery sequence, so only their watermark counts.
func (t PrefixTracker) Observe(env Envelope) {
	if env.Kind != KindReply {
		return
	}
	g := env.From.Group()
	if env.Msg.Flags&FlagRead == 0 && env.TS+1 > t[g] {
		t[g] = env.TS + 1
	}
	if env.Watermark > t[g] {
		t[g] = env.Watermark
	}
}

// Fold raises the tracked prefix at group g to at least prefix — the
// feed for read results observed outside the reply path (local replica
// reads return their serving watermark directly).
func (t PrefixTracker) Fold(g GroupID, prefix uint64) {
	if prefix > t[g] {
		t[g] = prefix
	}
}

// Prefix returns the observed delivered prefix at group g.
func (t PrefixTracker) Prefix(g GroupID) uint64 { return t[g] }
