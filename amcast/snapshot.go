package amcast

// Snapshot is an opaque, self-contained copy of one engine's protocol
// state. Implementations are protocol-specific and private; the only
// shared operation is identifying the owning group, which lets runtimes
// sanity-check that a snapshot is restored into the right engine.
//
// A Snapshot shares no mutable state with the engine that produced it:
// the engine may keep running (and a restored engine may diverge) without
// affecting the snapshot. This is what allows a runtime to keep a
// periodic snapshot as simulated stable storage and restore it more than
// once while exploring different recovery schedules.
type Snapshot interface {
	// SnapshotGroup returns the group whose engine produced the snapshot.
	SnapshotGroup() GroupID
}

// BinarySnapshot is a Snapshot with a canonical byte serialization —
// the seam the durable backend (internal/durable) persists through.
// MarshalBinary must capture the complete snapshot: decoding the bytes
// with the producing package's UnmarshalSnapshot and restoring the
// result must be indistinguishable from restoring the original.
type BinarySnapshot interface {
	Snapshot
	// MarshalBinary returns the snapshot's canonical encoding. The same
	// snapshot always marshals to the same bytes (map iteration is
	// sorted), so snapshot files are reproducible and diffable.
	MarshalBinary() ([]byte, error)
}

// SnapshotEngine is an Engine whose full state can be captured and
// restored, enabling crash/recovery testing (internal/chaos) and
// state-transfer-based replica recovery. All three protocol engines in
// this repository implement it.
//
// Contract: Restore(Snapshot()) must leave the engine byte-equivalent to
// the engine that took the snapshot — given the same subsequent envelope
// sequence, the restored engine must produce the same outputs and
// deliveries. Restore discards all current state, including undrained
// deliveries.
type SnapshotEngine interface {
	Engine
	// Snapshot captures the engine's complete state.
	Snapshot() Snapshot
	// Restore replaces the engine's state with a snapshot previously
	// produced by a compatible engine for the same group. It fails on a
	// snapshot of the wrong concrete type or group.
	Restore(Snapshot) error
}
