package amcast

// Engine is the deterministic state machine of one group's protocol logic.
//
// Engines never perform I/O and never block: each call consumes one input
// envelope and returns the envelopes to transmit. Delivered messages
// accumulate internally and are drained with TakeDeliveries by the
// surrounding runtime, which is responsible for sending KindReply envelopes
// to clients and for recording metrics.
//
// Determinism contract: given the same sequence of envelopes, an engine
// must produce the same outputs and deliveries (including their order).
// This is what allows a group to be replicated with state machine
// replication (internal/smr): replicas agree on the input sequence via
// Paxos and replay it through identical engines.
type Engine interface {
	// Group returns the group this engine serves.
	Group() GroupID
	// OnEnvelope consumes one incoming envelope and returns the envelopes
	// to send. Envelopes of unknown or unexpected kinds are ignored.
	OnEnvelope(env Envelope) []Output
	// TakeDeliveries returns the messages delivered since the previous
	// call, in delivery order, and clears the internal buffer.
	TakeDeliveries() []Delivery
}
