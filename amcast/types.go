// Package amcast defines the shared vocabulary of the atomic multicast
// protocols in this repository: group and node identifiers, application
// messages, wire envelopes, deliveries, and the Engine state-machine
// interface that every protocol (FlexCast, Skeen's distributed protocol,
// and the hierarchical tree protocol) implements.
//
// Engines are deterministic, single-threaded state machines: they consume
// one Envelope at a time and emit Outputs (envelopes addressed to other
// nodes) plus Deliveries (messages handed to the application in order).
// The same engine runs unmodified on the discrete-event simulator
// (internal/sim), the in-memory goroutine runtime, and the TCP runtime
// (internal/transport).
package amcast

import (
	"fmt"
	"sort"
)

// GroupID identifies a server group. Groups are numbered 1..N to match the
// paper's Figure 4 numbering; 0 is reserved as "no group".
type GroupID int32

// NoGroup is the zero GroupID, used as a sentinel.
const NoGroup GroupID = 0

// MsgID is a globally unique message identifier. Clients build ids as
// NewMsgID(clientIndex, seq) so ids are unique without coordination and
// provide a deterministic total order for tie-breaking.
type MsgID uint64

// NewMsgID builds a MsgID from a client index and a per-client sequence
// number. The client index occupies the high 24 bits.
func NewMsgID(client int, seq uint64) MsgID {
	return MsgID(uint64(client)<<40 | (seq & (1<<40 - 1)))
}

// Client extracts the client index encoded in the id.
func (id MsgID) Client() int { return int(uint64(id) >> 40) }

// Seq extracts the per-client sequence number encoded in the id.
func (id MsgID) Seq() uint64 { return uint64(id) & (1<<40 - 1) }

// String renders the id as "client/seq" for logs and test failures.
func (id MsgID) String() string { return fmt.Sprintf("%d/%d", id.Client(), id.Seq()) }

// NodeID addresses a process in a deployment: one server process per group
// (single-process groups, as in the paper's evaluation), plus any number of
// client processes. Replicated groups (internal/smr) address replicas
// through their own replica ids and expose the group as one logical NodeID.
type NodeID int32

// clientBase offsets client node ids so they never collide with group ids.
const clientBase NodeID = 1 << 20

// GroupNode returns the NodeID of the (logical) server process of group g.
func GroupNode(g GroupID) NodeID { return NodeID(g) }

// ClientNode returns the NodeID of client number i (i >= 0).
func ClientNode(i int) NodeID { return clientBase + NodeID(i) }

// IsClient reports whether n addresses a client process.
func (n NodeID) IsClient() bool { return n >= clientBase }

// ClientIndex returns the client number for a client NodeID.
func (n NodeID) ClientIndex() int { return int(n - clientBase) }

// Group returns the group addressed by a server NodeID.
func (n NodeID) Group() GroupID { return GroupID(n) }

// String renders the node id as "gN" or "cN".
func (n NodeID) String() string {
	if n.IsClient() {
		return fmt.Sprintf("c%d", n.ClientIndex())
	}
	return fmt.Sprintf("g%d", int32(n))
}

// MsgFlags carries per-message protocol flags.
type MsgFlags uint8

const (
	// FlagFlush marks the periodic garbage-collection message multicast to
	// all groups (paper §4.3). Engines treat it as an ordinary message and
	// additionally prune their histories after delivering it.
	FlagFlush MsgFlags = 1 << iota
	// FlagRead marks a read-only transaction served outside the multicast
	// (KindRead and the KindReply answering it). Read replies carry a
	// watermark but no delivery sequence, so the flag tells the session
	// barrier (PrefixTracker) not to interpret TS as one.
	FlagRead
	// FlagSession marks a message carrying a session id (Message.Session):
	// a multiplexed client connection speaking for many logical sessions
	// stamps each message with the session it belongs to, and replies echo
	// it (Header preserves it), so the demultiplexer on the client side
	// routes completions — and the per-session watermark vectors behind
	// read-your-writes — without one TCP conn per session. On the wire the
	// flag gates the session varint's presence; a set flag with session 0
	// is non-canonical (codec rejects it).
	FlagSession
)

// Message is an application message handed to multicast(m). Dst must be
// sorted, non-empty and duplicate-free; use NormalizeDst.
type Message struct {
	// ID is the globally unique message id (NewMsgID).
	ID MsgID
	// Sender is the client that multicast the message.
	Sender NodeID
	// Dst is the destination group set, sorted ascending.
	Dst []GroupID
	// Flags carries per-message protocol flags (FlagFlush, FlagRead,
	// FlagSession).
	Flags MsgFlags
	// Session identifies the logical client session the message belongs
	// to when the sender multiplexes many sessions over one connection
	// (loadgen's open loop). Nonzero iff Flags&FlagSession is set; ids
	// are allocated by the client layer and opaque to the protocols —
	// engines and replies carry them through untouched.
	Session uint64
	// Payload is the application payload (gtpcc.EncodeTx on executing
	// deployments).
	Payload []byte
}

// IsLocal reports whether m is addressed to a single group (a "local"
// message in the paper's terminology).
func (m Message) IsLocal() bool { return len(m.Dst) == 1 }

// IsGlobal reports whether m is addressed to two or more groups.
func (m Message) IsGlobal() bool { return len(m.Dst) > 1 }

// HasDst reports whether g is one of m's destinations. Dst is sorted, so
// this is a binary search.
func (m Message) HasDst(g GroupID) bool {
	i := sort.Search(len(m.Dst), func(i int) bool { return m.Dst[i] >= g })
	return i < len(m.Dst) && m.Dst[i] == g
}

// Header returns a copy of m without its payload. Auxiliary protocol
// messages (acks, notifications, timestamps) carry only the header, which
// keeps their wire size realistic.
func (m Message) Header() Message {
	h := m
	h.Payload = nil
	return h
}

// Clone returns a deep copy of m.
func (m Message) Clone() Message {
	c := m
	c.Dst = append([]GroupID(nil), m.Dst...)
	c.Payload = append([]byte(nil), m.Payload...)
	return c
}

// NormalizeDst sorts dst ascending and removes duplicates, in place.
func NormalizeDst(dst []GroupID) []GroupID {
	sort.Slice(dst, func(i, j int) bool { return dst[i] < dst[j] })
	out := dst[:0]
	var prev GroupID = -1
	for _, g := range dst {
		if g != prev {
			out = append(out, g)
			prev = g
		}
	}
	return out
}

// Execution result codes carried on Delivery.Result and on KindReply
// envelopes when a deployment executes deliveries against application
// state (internal/store). 0 is reserved for deployments (or messages,
// e.g. flush multicasts) that do not execute.
const (
	// ResultNone marks a delivery that was not executed.
	ResultNone uint8 = 0
	// ResultCommitted marks a transaction that executed and committed.
	ResultCommitted uint8 = 1
	// ResultAborted marks a transaction that executed and rolled back.
	ResultAborted uint8 = 2
	// ResultRefused marks a read (KindRead) the serving node declined to
	// execute — its lease expired or the requested barrier is ahead of
	// its delivered prefix. The client retries elsewhere or reports it.
	ResultRefused uint8 = 3
)

// Delivery is one message handed to the application by a group, together
// with the group-local delivery sequence number (0-based).
type Delivery struct {
	// Group is the delivering group.
	Group GroupID
	// Seq is the group-local delivery sequence number (0-based).
	Seq uint64
	// Msg is the delivered message.
	Msg Message
	// Result is the execution outcome when the group runs a state
	// machine over its deliveries (ResultCommitted/ResultAborted);
	// ResultNone for pure-multicast deployments. Runtimes copy it onto
	// the KindReply envelope so clients observe commit/abort.
	Result uint8
	// Watermark is the serving node's delivered-prefix watermark after
	// the batch containing this delivery was applied (so at least Seq+1);
	// 0 when the deployment executes no state machine. Runtimes copy it
	// onto the KindReply envelope, feeding the client's session barrier
	// (Envelope.Watermark).
	Watermark uint64
}
