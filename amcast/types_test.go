package amcast

import (
	"reflect"
	"testing"
	"testing/quick"
)

func TestMsgIDRoundTrip(t *testing.T) {
	f := func(client uint16, seq uint32) bool {
		id := NewMsgID(int(client), uint64(seq))
		return id.Client() == int(client) && id.Seq() == uint64(seq)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMsgIDOrderingFollowsSeq(t *testing.T) {
	a := NewMsgID(1, 5)
	b := NewMsgID(1, 6)
	if !(a < b) {
		t.Fatal("ids of one client must order by sequence")
	}
	if NewMsgID(2, 0) < NewMsgID(1, 1<<30) {
		t.Fatal("client index must dominate ordering")
	}
}

func TestMsgIDString(t *testing.T) {
	if got := NewMsgID(3, 17).String(); got != "3/17" {
		t.Fatalf("String = %q", got)
	}
}

func TestNodeIDKinds(t *testing.T) {
	g := GroupNode(7)
	if g.IsClient() {
		t.Fatal("group node classified as client")
	}
	if g.Group() != 7 {
		t.Fatalf("Group() = %d", g.Group())
	}
	c := ClientNode(42)
	if !c.IsClient() {
		t.Fatal("client node not classified as client")
	}
	if c.ClientIndex() != 42 {
		t.Fatalf("ClientIndex = %d", c.ClientIndex())
	}
	if g.String() != "g7" || c.String() != "c42" {
		t.Fatalf("strings: %q %q", g, c)
	}
}

func TestMessageDstHelpers(t *testing.T) {
	m := Message{ID: 1, Dst: []GroupID{2, 5, 9}}
	for _, g := range m.Dst {
		if !m.HasDst(g) {
			t.Fatalf("HasDst(%d) = false", g)
		}
	}
	for _, g := range []GroupID{1, 3, 10} {
		if m.HasDst(g) {
			t.Fatalf("HasDst(%d) = true", g)
		}
	}
	if m.IsLocal() || !m.IsGlobal() {
		t.Fatal("3-destination message misclassified")
	}
	local := Message{Dst: []GroupID{4}}
	if !local.IsLocal() || local.IsGlobal() {
		t.Fatal("1-destination message misclassified")
	}
}

func TestHeaderStripsPayload(t *testing.T) {
	m := Message{ID: 1, Dst: []GroupID{1}, Payload: []byte("xyz")}
	h := m.Header()
	if h.Payload != nil {
		t.Fatal("header kept payload")
	}
	if m.Payload == nil {
		t.Fatal("Header mutated the original")
	}
	if h.ID != m.ID || !reflect.DeepEqual(h.Dst, m.Dst) {
		t.Fatal("header lost identity fields")
	}
}

func TestCloneIsDeep(t *testing.T) {
	m := Message{ID: 1, Dst: []GroupID{1, 2}, Payload: []byte("xy")}
	c := m.Clone()
	c.Dst[0] = 9
	c.Payload[0] = 'z'
	if m.Dst[0] == 9 || m.Payload[0] == 'z' {
		t.Fatal("Clone shares backing arrays")
	}
}

func TestNormalizeDst(t *testing.T) {
	tests := []struct {
		in, want []GroupID
	}{
		{nil, nil},
		{[]GroupID{3}, []GroupID{3}},
		{[]GroupID{3, 1, 2}, []GroupID{1, 2, 3}},
		{[]GroupID{2, 2, 1, 1}, []GroupID{1, 2}},
		{[]GroupID{5, 5, 5}, []GroupID{5}},
	}
	for _, tt := range tests {
		got := NormalizeDst(append([]GroupID(nil), tt.in...))
		if len(got) == 0 && len(tt.want) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, tt.want) {
			t.Errorf("NormalizeDst(%v) = %v, want %v", tt.in, got, tt.want)
		}
	}
}

func TestNormalizeDstProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		in := make([]GroupID, len(raw))
		for i, v := range raw {
			in[i] = GroupID(v%12) + 1
		}
		out := NormalizeDst(in)
		seen := make(map[GroupID]bool)
		for i, g := range out {
			if seen[g] {
				return false
			}
			seen[g] = true
			if i > 0 && out[i-1] >= g {
				return false
			}
		}
		// Every input group survives.
		for _, v := range raw {
			if !seen[GroupID(v%12)+1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestKindStringAndPayload(t *testing.T) {
	kinds := []Kind{KindRequest, KindMsg, KindAck, KindNotif, KindTS, KindFwd, KindReply}
	for _, k := range kinds {
		if k.String() == "" {
			t.Fatalf("kind %d has no name", k)
		}
	}
	if Kind(99).String() != "Kind(99)" {
		t.Fatal("unknown kind name wrong")
	}
	payload := map[Kind]bool{KindRequest: true, KindMsg: true, KindFwd: true}
	for _, k := range kinds {
		if k.IsPayload() != payload[k] {
			t.Errorf("%s IsPayload = %v", k, k.IsPayload())
		}
	}
}

func TestHistDeltaEmpty(t *testing.T) {
	var nilDelta *HistDelta
	if !nilDelta.Empty() {
		t.Fatal("nil delta not empty")
	}
	if !(&HistDelta{}).Empty() {
		t.Fatal("zero delta not empty")
	}
	if (&HistDelta{Nodes: []HistNode{{ID: 1}}}).Empty() {
		t.Fatal("non-empty delta reported empty")
	}
}
