module flexcast

go 1.22
