// Benchmarks that regenerate the paper's tables and figures (one bench
// per table/figure, reporting the headline numbers as custom metrics)
// plus micro-benchmarks of the core building blocks.
//
// The figure benches run the full experiment at a reduced virtual
// duration per iteration; run cmd/flexbench for paper-scale output.
//
//	go test -bench=. -benchmem
package flexcast_test

import (
	"math/rand"
	"strings"
	"testing"

	"flexcast/amcast"
	"flexcast/internal/codec"
	"flexcast/internal/core"
	"flexcast/internal/experiments"
	"flexcast/internal/history"
	"flexcast/internal/overlay"
	"flexcast/internal/paxos"
	"flexcast/internal/wan"
)

// benchOpts shrinks every experiment to ~3 virtual seconds per iteration.
var benchOpts = experiments.Options{Scale: 0.05, Seed: 1}

// BenchmarkFigure1HierarchicalOverhead regenerates Figure 1: per-group
// communication overhead of tree T1 under gTPC-C at 90 % locality.
// Reported metrics: mean overhead and the maximum per-group overhead (%).
func BenchmarkFigure1HierarchicalOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig1(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		max := 0.0
		for _, row := range res.Rows {
			if row.Overhead > max {
				max = row.Overhead
			}
		}
		b.ReportMetric(res.Mean*100, "mean-overhead-%")
		b.ReportMetric(max*100, "max-overhead-%")
	}
}

// BenchmarkFigure5Table2OverlayLatency regenerates Figure 5 / Table 2:
// per-destination latency across overlays (FlexCast O1/O2, trees
// T1/T2/T3) at 90 % locality. Reported metric: FlexCast O1's 90th
// percentile first-destination latency (ms).
func BenchmarkFigure5Table2OverlayLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig5Table2(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Rows[0].PerDest[0].Percentile(90)/1000, "O1-1st-p90-ms")
		b.ReportMetric(res.Rows[1].PerDest[0].Percentile(90)/1000, "O2-1st-p90-ms")
	}
}

// BenchmarkFigure6Throughput regenerates Figure 6: throughput vs number
// of clients at 99 % locality with the full gTPC-C mix. Reported
// metrics: each protocol's plateau (1440 clients) in kops/s.
func BenchmarkFigure6Throughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig6(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		for _, label := range res.Order {
			curve := res.Curves[label]
			b.ReportMetric(curve[len(curve)-1].Throughput/1000, label+"-kops")
		}
	}
}

// BenchmarkFigure7Table3LocalityLatency regenerates Figure 7 / Table 3:
// per-destination latency at 90/95/99 % locality for all three
// protocols. Reported metrics: 90th percentile first-destination latency
// at 90 % locality per protocol (ms) — the paper's headline comparison.
func BenchmarkFigure7Table3LocalityLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig7Table3(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range res.Rows {
			switch row.Label {
			case "FlexCast 90%", "Hierarchical 90%", "Distributed 90%":
				name := strings.ReplaceAll(strings.TrimSuffix(row.Label, " 90%"), " ", "-")
				b.ReportMetric(row.PerDest[0].Percentile(90)/1000, name+"-1st-p90-ms")
			}
		}
	}
}

// BenchmarkFigure8MessageCost regenerates Figure 8: per-node messages/s,
// average message size, and KB/s. Reported metrics: mean KB/s per node
// for each protocol.
func BenchmarkFigure8MessageCost(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig8(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		for _, label := range res.Order {
			var kb float64
			for _, n := range res.PerProtocol[label] {
				kb += n.KBPerS
			}
			b.ReportMetric(kb/float64(len(res.PerProtocol[label])), label+"-KB/s")
		}
	}
}

// BenchmarkFigure9Table4TreeOverhead regenerates Figure 9 / Table 4:
// per-group overhead of T1/T2/T3 at 95/99 % locality. Reported metrics:
// mean overhead per tree at 99 % locality (%).
func BenchmarkFigure9Table4TreeOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig9Table4(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range res.Rows {
			if row.Locality == 0.99 {
				b.ReportMetric(row.Mean, row.Tree+"-mean-overhead-%")
			}
		}
	}
}

// --- micro-benchmarks of the building blocks ---

// BenchmarkFlexCastEngineLocal measures the engine's per-message cost
// for local (single-destination) messages at the lca — the fast path.
func BenchmarkFlexCastEngineLocal(b *testing.B) {
	ov := overlay.MustCDAG([]amcast.GroupID{1, 2, 3})
	eng := core.MustNew(core.Config{Group: 1, Overlay: ov})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		env := amcast.Envelope{
			Kind: amcast.KindRequest,
			From: amcast.ClientNode(0),
			Msg: amcast.Message{
				ID:     amcast.NewMsgID(0, uint64(i+1)),
				Sender: amcast.ClientNode(0),
				Dst:    []amcast.GroupID{1},
			},
		}
		eng.OnEnvelope(env)
		eng.TakeDeliveries()
	}
}

// BenchmarkFlexCastEngineGlobal measures the lca's per-message cost for
// global messages, including history-diff construction.
func BenchmarkFlexCastEngineGlobal(b *testing.B) {
	ov := overlay.MustCDAG([]amcast.GroupID{1, 2, 3})
	eng := core.MustNew(core.Config{Group: 1, Overlay: ov})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		env := amcast.Envelope{
			Kind: amcast.KindRequest,
			From: amcast.ClientNode(0),
			Msg: amcast.Message{
				ID:     amcast.NewMsgID(0, uint64(i+1)),
				Sender: amcast.ClientNode(0),
				Dst:    []amcast.GroupID{1, 2, 3},
			},
		}
		eng.OnEnvelope(env)
		eng.TakeDeliveries()
	}
}

// BenchmarkHistoryMergeAndCheck measures history merge plus the
// can-deliver dependency walk on a growing history.
func BenchmarkHistoryMergeAndCheck(b *testing.B) {
	h := history.New()
	for i := 0; i < b.N; i++ {
		id := amcast.MsgID(i + 1)
		h.Merge(&amcast.HistDelta{
			Nodes: []amcast.HistNode{{ID: id, Dst: []amcast.GroupID{1, 2}}},
			Edges: []amcast.HistEdge{{From: amcast.MsgID(i), To: id}},
		})
		h.AnyBeforeUntil(id,
			func(amcast.MsgID) bool { return false },
			func(x amcast.MsgID) bool { return x < id }) // prune immediately
	}
}

// BenchmarkCodecMarshal measures wire encoding of a typical FlexCast MSG
// envelope with a small history diff.
func BenchmarkCodecMarshal(b *testing.B) {
	env := benchEnvelope()
	b.ReportMetric(float64(codec.Size(env)), "bytes")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		codec.Marshal(env)
	}
}

// BenchmarkCodecUnmarshal measures wire decoding.
func BenchmarkCodecUnmarshal(b *testing.B) {
	buf := codec.Marshal(benchEnvelope())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := codec.Unmarshal(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func benchEnvelope() amcast.Envelope {
	return amcast.Envelope{
		Kind: amcast.KindMsg,
		From: amcast.GroupNode(8),
		Msg: amcast.Message{
			ID:      amcast.NewMsgID(3, 100),
			Sender:  amcast.ClientNode(3),
			Dst:     []amcast.GroupID{6, 7, 8},
			Payload: make([]byte, 128),
		},
		Hist: &amcast.HistDelta{
			Nodes: []amcast.HistNode{
				{ID: 1, Dst: []amcast.GroupID{1, 2}},
				{ID: 2, Dst: []amcast.GroupID{2, 3}},
				{ID: 3, Dst: []amcast.GroupID{6, 7}},
			},
			Edges: []amcast.HistEdge{{From: 1, To: 2}, {From: 2, To: 3}},
		},
		NotifList: []amcast.NotifPair{{Notifier: 2, Notified: 4, Epoch: 1}},
	}
}

// BenchmarkGTPCCWorkload measures a full FlexCast gTPC-C run per
// simulated-second (events/s of the whole stack).
func BenchmarkGTPCCWorkload(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig1(experiments.Options{Scale: 0.05, Seed: int64(i + 1)})
		if err != nil {
			b.Fatal(err)
		}
		_ = res
	}
}

// BenchmarkPaxosDecide measures end-to-end consensus throughput of the
// SMR substrate: proposals decided per second on a 3-replica in-memory
// cluster.
func BenchmarkPaxosDecide(b *testing.B) {
	reps := make([]*paxos.Replica, 3)
	for i := range reps {
		reps[i] = paxos.MustNewReplica(paxos.Config{ID: paxos.ReplicaID(i), N: 3})
	}
	var queue []paxos.Message
	pump := func(ms []paxos.Message) { queue = append(queue, ms...) }
	drain := func() {
		for len(queue) > 0 {
			m := queue[0]
			queue = queue[1:]
			pump(reps[m.To].OnMessage(m))
		}
	}
	value := make([]byte, 64)
	rand.New(rand.NewSource(1)).Read(value)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pump(reps[0].Propose(value))
		drain()
	}
	b.StopTimer()
	for _, r := range reps {
		if got := int(r.Decided()); got != b.N {
			b.Fatalf("replica %d decided %d of %d", r.ID(), got, b.N)
		}
	}
}

// BenchmarkWanLatencyLookup measures the hot-path latency model.
func BenchmarkWanLatencyLookup(b *testing.B) {
	gs := wan.Groups()
	var sink int64
	for i := 0; i < b.N; i++ {
		sink += wan.OneWayMicros(gs[i%12], gs[(i+5)%12])
	}
	_ = sink
}
